// Package hotalloc is an analyzer fixture: per-item allocation inside
// parallel worker bodies, next to the per-worker scratch pattern that
// must pass.
package hotalloc

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/parallel"
)

// BadPerItem allocates and formats once per item.
func BadPerItem(n int) []string {
	out := make([]string, n)
	parallel.For(n, func(i int) {
		buf := make([]byte, 64)       // want hotalloc
		out[i] = fmt.Sprintf("%d", i) // want hotalloc
		var tail []byte
		tail = append(tail, buf[:8]...) // want hotalloc
		_ = tail
	})
	return out
}

// BadEnginePerItem allocates per item inside an engine-dispatched
// worker body: Engine.For is a fan-out exactly like parallel.For.
func BadEnginePerItem(e engine.Engine, n int) []string {
	out := make([]string, n)
	e.For(n, func(i int) {
		buf := make([]byte, 8) // want hotalloc
		buf[0] = byte(i)
		out[i] = string(buf[:1])
	})
	return out
}

// BadCtxPerItem allocates per item inside a cancellable dispatch:
// engine.RunCtx fans out exactly like Engine.For, so its closures are
// just as hot.
func BadCtxPerItem(ctx context.Context, e engine.Engine, n int) ([]string, error) {
	out := make([]string, n)
	err := engine.RunCtx(ctx, e, n, nil, func(i int) {
		out[i] = fmt.Sprint(i) // want hotalloc
	})
	return out, err
}

// GoodEngineScratch hoists per-worker scratch ahead of the engine
// fan-out, mirroring the parallel.ForWorker pattern.
func GoodEngineScratch(e engine.Engine, n int) []int {
	workers := e.Workers(n)
	scratch := make([][]byte, workers)
	for w := range scratch {
		scratch[w] = make([]byte, 8)
	}
	out := make([]int, n)
	e.ForWorker(n, workers, func(worker, i int) {
		buf := scratch[worker]
		buf[0] = byte(i)
		out[i] = int(buf[0])
	})
	return out
}

// GoodScratch is the ForWorker pattern: one scratch buffer per
// worker, sized before the fan-out.
func GoodScratch(n, workers int) []int {
	if workers < 1 {
		workers = parallel.Workers(n)
	}
	scratch := make([][]byte, workers)
	for w := range scratch {
		scratch[w] = make([]byte, 64)
	}
	out := make([]int, n)
	parallel.ForWorker(n, workers, func(worker, i int) {
		buf := scratch[worker]
		buf[0] = byte(i)
		out[i] = int(buf[0])
	})
	return out
}
