package oraclepair

import "testing"

// TestPinnedMatchesSerial is the equivalence pin the oraclepair rule
// requires: one test referencing both halves of the pair.
func TestPinnedMatchesSerial(t *testing.T) {
	for n := 0; n < 8; n++ {
		if got, want := Pinned(n), PinnedSerial(n); got != want {
			t.Fatalf("Pinned(%d) = %d, PinnedSerial = %d", n, got, want)
		}
	}
}

// TestMentionedOn references MentionedOn without calling
// enginetest.Run — this file is not a suite file, so the reference
// must not satisfy the suite-registration check.
func TestMentionedOn(t *testing.T) {
	if got := MentionedOn(nil, 0); len(got) != 0 {
		t.Fatalf("MentionedOn = %v", got)
	}
}
