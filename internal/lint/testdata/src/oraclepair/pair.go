// Package oraclepair is an analyzer fixture: an X/XSerial engine pair
// with no equivalence test (flagged) next to a properly pinned pair.
package oraclepair

// Unpinned is a word-parallel engine...
func Unpinned(n int) int { return n * 2 }

// UnpinnedSerial is its retained oracle — but no test references the
// pair, so nothing keeps them bit-identical.
func UnpinnedSerial(n int) int { // want oraclepair
	acc := 0
	for i := 0; i < 2; i++ {
		acc += n
	}
	return acc
}

// Pinned is a word-parallel engine with a proper equivalence test.
func Pinned(n int) int { return n * 3 }

// PinnedSerial is its oracle, referenced together with Pinned from
// pair_test.go.
func PinnedSerial(n int) int {
	acc := 0
	for i := 0; i < 3; i++ {
		acc += n
	}
	return acc
}
