package oraclepair

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/enginetest"
)

// TestEngineSuite registers RegisteredOn into the cross-engine suite —
// the pattern the oraclepair suite check requires for every
// engine-accepting entry point.
func TestEngineSuite(t *testing.T) {
	enginetest.Run(t, nil, []enginetest.Case{{
		Name: "oraclepair.RegisteredOn",
		Eval: func(e engine.Engine) (any, error) { return RegisteredOn(e, 8), nil },
	}, {
		Name: "oraclepair.RegisteredShardedOn",
		Eval: func(e engine.Engine) (any, error) {
			return RegisteredShardedOn(engine.Shard{K: 0, N: 1, Inner: e}, 8), nil
		},
	}})
}
