package oraclepair

import "repro/internal/engine"

// RegisteredOn is an engine-accepting entry point registered in the
// cross-engine suite: engine_test.go carries an enginetest.Case for it
// inside an enginetest.Run call, so it passes the suite check.
func RegisteredOn(e engine.Engine, n int) []int {
	out := make([]int, n)
	engine.Use(e).For(n, func(i int) { out[i] = i * i })
	return out
}

// UnregisteredOn takes an Engine but no test file registers it into
// the enginetest suite — nothing ever replays it across engines.
func UnregisteredOn(e engine.Engine, n int) []int { // want oraclepair
	out := make([]int, n)
	engine.Use(e).For(n, func(i int) { out[i] = i + 1 })
	return out
}

// MentionedOn is referenced from pair_test.go — but that file never
// calls enginetest.Run, so a bare mention does not satisfy the suite
// check.
func MentionedOn(e engine.Engine, n int) []int { // want oraclepair
	out := make([]int, n)
	engine.Use(e).For(n, func(i int) { out[i] = i * 3 })
	return out
}

// ShardedOn takes a concrete engine wrapper rather than the Engine
// interface — it still fans work out, so the suite check applies, and
// nothing registers it.
func ShardedOn(sh engine.Shard, n int) []int { // want oraclepair
	out := make([]int, n)
	sh.For(n, func(i int) { out[i] = i * 5 })
	return out
}

// RegisteredShardedOn is the conforming concrete-wrapper entry point:
// engine_test.go registers it into the cross-engine suite.
func RegisteredShardedOn(sh engine.Shard, n int) []int {
	out := make([]int, n)
	sh.For(n, func(i int) { out[i] = i * 7 })
	return out
}

// unexportedOn is below the rule's scope: unexported entry points are
// implementation detail.
func unexportedOn(e engine.Engine, n int) []int {
	out := make([]int, n)
	engine.Use(e).For(n, func(i int) { out[i] = -i })
	return out
}

var _ = unexportedOn
