// Package detrand is an analyzer fixture: deliberate violations of
// the determinism rule, marked with `// want <rule>` comments, next
// to the conforming patterns the rule must not flag.
package detrand

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/parallel"
	"repro/internal/stochastic"
)

// BadWallClockSeed seeds a worker RNG from the wall clock: both the
// time.Now use and the underived constructor are violations.
func BadWallClockSeed(n int) []float64 {
	out := make([]float64, n)
	parallel.For(n, func(i int) {
		rng := stochastic.NewSplitMix64(uint64(time.Now().UnixNano())) // want detrand detrand
		out[i] = rng.Next()
	})
	return out
}

// BadSharedSeed constructs a per-item RNG from the item index without
// DeriveSeed — correlated streams across items.
func BadSharedSeed(n int, seed uint64) []float64 {
	out := make([]float64, n)
	parallel.ForWorker(n, 0, func(_, i int) {
		rng := stochastic.NewSplitMix64(seed + uint64(i)) // want detrand
		out[i] = rng.Next()
	})
	return out
}

// BadGlobalRand draws from the process-global math/rand source.
func BadGlobalRand() float64 {
	return rand.Float64() // want detrand
}

// GoodDirect derives the per-item seed in the closure body.
func GoodDirect(n int, seed uint64) []float64 {
	out := make([]float64, n)
	parallel.For(n, func(i int) {
		rng := stochastic.NewSplitMix64(stochastic.DeriveSeed(seed, i))
		out[i] = rng.Next()
	})
	return out
}

// itemSeed is the seed-helper pattern (trialSeeds, waterfallSeeds):
// the closure calls it, and it derives through DeriveSeed.
func itemSeed(base uint64, i int) uint64 {
	return stochastic.DeriveSeed(base, i)
}

// GoodHelper derives through a same-package helper.
func GoodHelper(n int, seed uint64) []float64 {
	out := make([]float64, n)
	parallel.For(n, func(i int) {
		rng := stochastic.NewSplitMix64(itemSeed(seed, i))
		out[i] = rng.Next()
	})
	return out
}

// BadEngineSeed constructs an underived per-item RNG inside an
// engine-dispatched worker body: Engine.For is a fan-out exactly like
// parallel.For, so the same discipline applies.
func BadEngineSeed(e engine.Engine, n int, seed uint64) []float64 {
	out := make([]float64, n)
	e.For(n, func(i int) {
		rng := stochastic.NewSplitMix64(seed + uint64(i)) // want detrand
		out[i] = rng.Next()
	})
	return out
}

// GoodEngineSeed derives per-item seeds on the engine dispatch path.
func GoodEngineSeed(e engine.Engine, n int, seed uint64) []float64 {
	out := make([]float64, n)
	e.For(n, func(i int) {
		rng := stochastic.NewSplitMix64(stochastic.DeriveSeed(seed, i))
		out[i] = rng.Next()
	})
	return out
}

// BadShardSeed constructs an underived per-item RNG inside a
// shard-filtered dispatch: engine.Shard.For only narrows which indices
// run, so its closures are worker bodies under the same discipline.
func BadShardSeed(e engine.Engine, n int, seed uint64) []float64 {
	out := make([]float64, n)
	engine.Shard{K: 0, N: 2, Inner: e}.For(n, func(i int) {
		rng := stochastic.NewSplitMix64(seed + uint64(i)) // want detrand
		out[i] = rng.Next()
	})
	return out
}

// GoodShardSeed derives per-item seeds on the sharded dispatch path —
// the property that makes shard outputs reassemble bit-identically.
func GoodShardSeed(e engine.Engine, n int, seed uint64) []float64 {
	out := make([]float64, n)
	engine.Shard{K: 0, N: 2, Inner: e}.For(n, func(i int) {
		rng := stochastic.NewSplitMix64(stochastic.DeriveSeed(seed, i))
		out[i] = rng.Next()
	})
	return out
}

// BadCtxSeed constructs an underived per-item RNG inside a
// cancellable dispatch: engine.RunCtx stops early but never re-runs
// an item, so its closures obey the same discipline as Engine.For.
func BadCtxSeed(ctx context.Context, e engine.Engine, n int, seed uint64) ([]float64, error) {
	out := make([]float64, n)
	err := engine.RunCtx(ctx, e, n, nil, func(i int) {
		rng := stochastic.NewSplitMix64(seed + uint64(i)) // want detrand
		out[i] = rng.Next()
	})
	return out, err
}

// BadParallelCtxSeed is the same violation on the parallel layer's
// context-aware dispatch.
func BadParallelCtxSeed(ctx context.Context, n int, seed uint64) ([]float64, error) {
	out := make([]float64, n)
	err := parallel.ForCtx(ctx, n, func(i int) {
		rng := stochastic.NewSplitMix64(seed ^ uint64(i)) // want detrand
		out[i] = rng.Next()
	})
	return out, err
}

// GoodCtxSeed derives per-item seeds on the cancellable dispatch path.
func GoodCtxSeed(ctx context.Context, e engine.Engine, n int, seed uint64) ([]float64, error) {
	out := make([]float64, n)
	err := engine.RunCtx(ctx, e, n, nil, func(i int) {
		rng := stochastic.NewSplitMix64(stochastic.DeriveSeed(seed, i))
		out[i] = rng.Next()
	})
	return out, err
}

// GoodSerial constructs its RNG outside any worker closure — the
// serial-oracle pattern, not flagged.
func GoodSerial(n int, seed uint64) []float64 {
	rng := stochastic.NewSplitMix64(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Next()
	}
	return out
}
