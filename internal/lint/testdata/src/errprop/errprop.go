// Package errprop is an analyzer fixture: discarded error returns
// (the oscspice bug class), next to the exempt forms and a suppressed
// intentional drop.
package errprop

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

func compute() (float64, error) { return 0, nil }

func emit() error { return nil }

// BadBlank discards the error of a single-result call.
func BadBlank() {
	_ = emit() // want errprop
}

// BadTupleBlank discards the error slot of a multi-assign.
func BadTupleBlank() float64 {
	v, _ := compute() // want errprop
	return v
}

// BadBare drops the error of a bare call statement.
func BadBare() {
	emit() // want errprop
}

// GoodChecked propagates.
func GoodChecked() error {
	if _, err := compute(); err != nil {
		return err
	}
	return emit()
}

// GoodExempt exercises every allowlisted form: stdout/stderr
// prints, in-memory buffer writes, and deferred cleanup.
func GoodExempt(f *os.File) string {
	fmt.Println("stdout is exempt")
	fmt.Fprintln(os.Stderr, "stderr is exempt")
	var sb strings.Builder
	sb.WriteString("builders never fail")
	defer f.Close()
	return sb.String()
}

// GoodSuppressed documents an intentional drop in place.
func GoodSuppressed(s string) int64 {
	//osclint:ignore errprop fixture: the zero default is the documented fallback for malformed input
	v, _ := strconv.ParseInt(s, 10, 64)
	return v
}
