// Package lint is the repo's static-analysis suite: a stdlib-only
// analyzer driver (go/parser + go/ast + go/types, with the standard
// library resolved from $GOROOT/src by go/importer's source importer —
// no x/tools, no go/packages) that enforces the conventions this
// reproduction's correctness story rests on. Run it via `go run
// ./cmd/osclint ./...` or `make lint`; CI fails on any unsuppressed
// finding.
//
// # Why these rules exist
//
// Every parallel engine in the repo is deterministic by construction:
// randomness derives from (seed, item index) via stochastic.DeriveSeed,
// never from scheduling, wall clock, or shared generator state. Every
// word-parallel engine X keeps a bit-serial sibling XSerial pinned by
// an equivalence test. Output renderers must not leak Go's randomized
// map iteration order, and errors must propagate instead of being
// swallowed. All four conventions have been violated before — PR 5's
// CI smoke diff caught map-iteration nondeterminism in
// optics.RenderSpectrumASCII only at runtime, and PR 2 fixed oscspice
// silently swallowing evaluation errors. This suite moves those bug
// classes from runtime diffs to analysis time — and now that the
// engine layer (internal/engine) multiplies the backends sharing each
// entry point, the rules cover engine-dispatched worker bodies too.
//
// # Rules
//
// detrand — deterministic randomness. In internal/ packages, time.Now
// and the global math/rand functions are banned outright: results must
// replay bit-identically from explicit seeds. Everywhere, a closure
// passed to a worker dispatcher — parallel.For / ForWorker / Run /
// ForCtx / ForWorkerCtx, or an Engine's For / ForWorker,
// engine.Chunked and the cancellable engine.ForCtx / ForWorkerCtx /
// RunCtx — that constructs an RNG
// (stochastic.NewSplitMix64, NewLFSR, NewChaoticSource,
// NewChaoticLaserSNG, NewReSCWithSeeds, or a math/rand constructor)
// must reference stochastic.DeriveSeed — directly in the body, or
// inside a same-package seed helper it calls (the trialSeeds /
// waterfallSeeds pattern) — so every item's randomness is a function
// of its index alone and results are identical at any GOMAXPROCS.
//
// mapiter — ordered output from map iteration. A `range` over a map
// whose body appends to a slice, writes through an io.Writer or
// fmt.Fprint*, sends on a channel, builds a string, or adds table rows
// leaks randomized iteration order into output. The collect-then-sort
// idiom passes: appends are clean when the destination slice is handed
// to a sort.* / slices.Sort* call later in the same block.
//
// oraclepair — equivalence pins, in two parts. Pairs: for every
// exported X with an exported XSerial sibling in an internal/
// package, some _test.go file in the package must reference both
// identifiers; otherwise the pair is unpinned and the oracle is dead
// weight. Suite registration: every exported function or method that
// takes an engine.Engine parameter must be exercised by the
// cross-engine suite — referenced from a _test.go file that imports
// internal/engine/enginetest and calls its Run — otherwise the entry
// point is never replayed across engines. internal/engine itself (and
// its subpackages) is exempt, being the layer under test.
//
// errprop — error propagation in cmd/ and internal/. Discarding an
// error via `_ =` (including the error slot of a multi-assign) or a
// bare call statement is flagged. defer/go statements, fmt.Print* to
// stdout, and strings.Builder / bytes.Buffer methods are exempt.
//
// hotalloc — allocation in hot worker bodies. Inside worker closures
// (the same parallel / engine dispatchers as detrand), `make`,
// growing `append`, and fmt.Sprint* run
// once per item; the rule points at the per-worker scratch pattern
// (O(workers) allocations, see image.RobertsCrossSC) backing the
// ROADMAP zero-alloc push.
//
// # Suppressions
//
// Intentional violations are annotated in place:
//
//	//osclint:ignore rule[,rule] reason text
//
// on the offending line (trailing) or the line above (standalone).
// The reason is mandatory — an ignore without one is itself reported —
// so each annotation documents why the convention does not apply
// (e.g. a serial oracle that must consume one RNG draw per clock by
// definition). `osclint -all` lists suppressed findings with their
// reasons; `osclint -json` emits machine-readable output.
package lint
