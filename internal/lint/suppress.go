package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// Suppression syntax:
//
//	//osclint:ignore rule[,rule...] reason text
//
// A suppression covers findings of the named rules on the comment's
// own line (trailing form) or on the next line (standalone form).
// The reason is mandatory: an ignore with no justification is itself
// reported under the "ignore" pseudo-rule, so annotations document
// *why* a convention is intentionally broken, never just that it is.

const ignorePrefix = "osclint:ignore"

type suppression struct {
	rules  []string
	reason string
}

// suppressions maps "file:line" of the suppressing comment to its
// parsed directive.
type suppressions map[string][]suppression

// covers reports whether f is covered by a suppression on its line or
// the line above, returning the annotation's reason.
func (s suppressions) covers(f Finding) (string, bool) {
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		key := posKey(f.Pos.Filename, line)
		for _, sup := range s[key] {
			for _, r := range sup.rules {
				if r == f.Rule || r == "all" {
					return sup.reason, true
				}
			}
		}
	}
	return "", false
}

func posKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// scanSuppressions walks every file's comments (tests included) for
// osclint:ignore directives. Malformed directives — no rule, or no
// reason — come back as findings.
func scanSuppressions(p *Package) (suppressions, []Finding) {
	sup := suppressions{}
	var bad []Finding
	files := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	files = append(files, p.Files...)
	files = append(files, p.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				rules, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				pos := p.Fset.Position(c.Pos())
				if rules == "" || reason == "" {
					bad = append(bad, Finding{
						Pos:  pos,
						Rule: "ignore",
						Message: "malformed suppression: want //osclint:ignore rule[,rule] reason " +
							"(the reason is mandatory)",
					})
					continue
				}
				// Anchor to the comment's END line: a trailing comment
				// suppresses its own line, a standalone one the next.
				end := p.Fset.Position(c.End())
				key := posKey(end.Filename, end.Line)
				sup[key] = append(sup[key], suppression{
					rules:  strings.Split(rules, ","),
					reason: reason,
				})
			}
		}
	}
	return sup, bad
}
