package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// moduleRoot walks up from the test's working directory to go.mod —
// the same resolution cmd/osclint uses.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// wantMarkers reads a fixture directory's `// want rule [rule...]`
// markers into a multiset keyed by file:line:rule.
func wantMarkers(t *testing.T, dir string) map[string]int {
	t.Helper()
	want := map[string]int{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for lineNo, line := range strings.Split(string(buf), "\n") {
			_, marker, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			rules := strings.Fields(marker)
			// Only real markers count: every field must be a rule name.
			// This keeps prose like `// want markers` in doc comments
			// from being read as expectations.
			valid := len(rules) > 0
			for _, r := range rules {
				if !isRuleName(r) {
					valid = false
				}
			}
			if !valid {
				continue
			}
			for _, rule := range rules {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), lineNo+1, rule)]++
			}
		}
	}
	return want
}

func isRuleName(s string) bool {
	for _, a := range Analyzers {
		if s == a.Name {
			return true
		}
	}
	return s == "ignore"
}

// runFixture lints one testdata package with the given rules and
// diffs the findings against the fixture's want markers.
func runFixture(t *testing.T, fixture string, rules ...string) {
	t.Helper()
	root := moduleRoot(t)
	rel := filepath.Join("internal", "lint", "testdata", "src", fixture)
	findings, err := Run(root, []string{rel}, Options{Rules: rules})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := map[string]int{}
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)]++
	}
	want := wantMarkers(t, filepath.Join(root, rel))
	keys := map[string]bool{}
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if got[k] != want[k] {
			t.Errorf("%s: got %d finding(s), fixture wants %d", k, got[k], want[k])
		}
	}
	if t.Failed() {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
	}
}

// The injected-violation gates: each rule must catch its fixture's
// deliberate violations and pass the conforming patterns. These are
// what keeps CI failing on a seeded time.Now RNG in a worker body or
// an unsorted map-range feeding a renderer.

func TestDetRandFixture(t *testing.T)    { runFixture(t, "detrand", "detrand") }
func TestMapIterFixture(t *testing.T)    { runFixture(t, "mapiter", "mapiter") }
func TestOraclePairFixture(t *testing.T) { runFixture(t, "oraclepair", "oraclepair") }
func TestErrPropFixture(t *testing.T)    { runFixture(t, "errprop", "errprop") }
func TestHotAllocFixture(t *testing.T)   { runFixture(t, "hotalloc", "hotalloc") }

// TestRepoIsClean is the acceptance gate run inside the test suite:
// the whole module must lint clean (zero unsuppressed findings) with
// every rule enabled.
func TestRepoIsClean(t *testing.T) {
	root := moduleRoot(t)
	findings, err := Run(root, []string{"./..."}, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unsuppressed finding: %s", f)
	}
}
