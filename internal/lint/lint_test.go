package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

const errpropFixture = "internal/lint/testdata/src/errprop"

// TestSuppressionFiltering pins the Options.All contract: a valid
// //osclint:ignore hides its finding from a default run but keeps it,
// marked with the annotation's reason, under All.
func TestSuppressionFiltering(t *testing.T) {
	root := moduleRoot(t)
	suppressedLine := 55 // the ParseInt drop in GoodSuppressed

	def, err := Run(root, []string{errpropFixture}, Options{Rules: []string{"errprop"}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range def {
		if f.Suppressed || f.Pos.Line == suppressedLine {
			t.Errorf("default run leaked suppressed finding: %s", f)
		}
	}

	all, err := Run(root, []string{errpropFixture}, Options{Rules: []string{"errprop"}, All: true})
	if err != nil {
		t.Fatalf("Run(All): %v", err)
	}
	if len(all) != len(def)+1 {
		t.Fatalf("All run returned %d findings, want %d (default %d + 1 suppressed)",
			len(all), len(def)+1, len(def))
	}
	found := false
	for _, f := range all {
		if f.Pos.Line == suppressedLine {
			found = true
			if !f.Suppressed {
				t.Errorf("finding at line %d not marked suppressed: %s", suppressedLine, f)
			}
			if !strings.Contains(f.Reason, "documented fallback") {
				t.Errorf("suppression reason not carried through: %q", f.Reason)
			}
			if !strings.Contains(f.String(), "(suppressed:") {
				t.Errorf("String() omits suppression marker: %s", f.String())
			}
		}
	}
	if !found {
		t.Errorf("All run missing the suppressed finding at line %d", suppressedLine)
	}
}

// TestMalformedIgnore pins that a reasonless directive is reported
// under the "ignore" pseudo-rule and does NOT suppress its target.
func TestMalformedIgnore(t *testing.T) {
	root := moduleRoot(t)
	findings, err := Run(root, []string{"internal/lint/testdata/src/ignorebad"}, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var gotIgnore, gotErrprop bool
	for _, f := range findings {
		switch f.Rule {
		case "ignore":
			gotIgnore = true
			if !strings.Contains(f.Message, "reason is mandatory") {
				t.Errorf("ignore finding message: %q", f.Message)
			}
		case "errprop":
			gotErrprop = true
		}
	}
	if !gotIgnore {
		t.Error("reasonless //osclint:ignore not reported under the ignore pseudo-rule")
	}
	if !gotErrprop {
		t.Error("malformed suppression wrongly hid the errprop finding it annotates")
	}
}

// TestUnknownRule pins the -rules error path.
func TestUnknownRule(t *testing.T) {
	root := moduleRoot(t)
	_, err := Run(root, []string{errpropFixture}, Options{Rules: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), `unknown rule "nope"`) {
		t.Fatalf("Run with bogus rule: err = %v, want unknown-rule error", err)
	}
}

// TestWriteJSON round-trips a finding through the -json wire form.
func TestWriteJSON(t *testing.T) {
	root := moduleRoot(t)
	findings, err := Run(root, []string{errpropFixture},
		Options{Rules: []string{"errprop"}, All: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, findings); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Col        int    `json:"col"`
		Rule       string `json:"rule"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
		Reason     string `json:"reason"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != len(findings) {
		t.Fatalf("decoded %d findings, want %d", len(decoded), len(findings))
	}
	for i, d := range decoded {
		f := findings[i]
		if d.File != f.Pos.Filename || d.Line != f.Pos.Line || d.Col != f.Pos.Column ||
			d.Rule != f.Rule || d.Message != f.Message ||
			d.Suppressed != f.Suppressed || d.Reason != f.Reason {
			t.Errorf("finding %d: JSON %+v does not match %+v", i, d, f)
		}
	}
}

// TestExpandPatternsSkipsTestdata pins that the recursive walk skips
// testdata trees — the fixtures' deliberate violations must never leak
// into an `osclint ./...` run.
func TestExpandPatternsSkipsTestdata(t *testing.T) {
	root := moduleRoot(t)
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	if len(dirs) == 0 {
		t.Fatal("ExpandPatterns matched nothing")
	}
	sep := string(filepath.Separator)
	for _, d := range dirs {
		if strings.Contains(d, sep+"testdata"+sep) || strings.HasSuffix(d, sep+"testdata") {
			t.Errorf("walk descended into testdata: %s", d)
		}
	}
	// A non-recursive pattern names one package directory directly.
	one, err := ExpandPatterns(root, []string{"cmd/osclint"})
	if err != nil {
		t.Fatalf("ExpandPatterns(cmd/osclint): %v", err)
	}
	if len(one) != 1 || one[0] != filepath.Join(root, "cmd", "osclint") {
		t.Errorf("ExpandPatterns(cmd/osclint) = %v", one)
	}
}
