package stochastic

import (
	"fmt"
	"math"
	"math/bits"
)

// Plane kernels: word-level gate primitives over caller-owned scratch.
//
// A *plane* is a packed bit-stream held in a plain []uint64, LSB-first
// within each word exactly like Bitstream's backing words, but with no
// header and no per-call allocation: tiled engines (internal/image)
// allocate a few planes per worker and stream millions of pixels
// through them. (Not to be confused with AddPlane/PlaneEquals above,
// whose "planes" are the bit-planes of a carry-save counter.)
//
// All fill kernels write exactly WordsFor(n) words and leave bits past
// n clear, so the combinators below need no tail masking except after
// complement; PlaneOnes can then popcount whole words.

// WordsFor returns the number of 64-bit words covering n bits.
func WordsFor(n int) int { return (n + 63) / 64 }

// probThreshold maps a probability to the integer comparator threshold
// used by the devirtualized SplitMix64 paths: Next() < p compares
// k/2^53 against p with k = NextUint64()>>11; both k/2^53 and p·2^53
// are exact (power-of-two scaling), so k < ceil(p·2^53) is the same
// predicate with the per-sample int→float conversion dropped. The
// degenerate probabilities clamp to the never/always thresholds.
func probThreshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 53
	}
	return uint64(math.Ceil(p * (1 << 53)))
}

func checkPlane(name string, p []uint64, words int) {
	if len(p) < words {
		panic(fmt.Sprintf("stochastic: plane %s holds %d words, need %d", name, len(p), words))
	}
}

// planeWordBits returns how many of word w's bits are in range for an
// n-bit stream.
func planeWordBits(n, w int) int {
	if rem := n - w*64; rem < 64 {
		return rem
	}
	return 64
}

// FillPlane fills dst with an n-bit Bernoulli(p) stream drawn from
// src, consuming the source exactly as SNG.Generate would — the two
// produce identical bits from equal sources.
func FillPlane(src NumberSource, p float64, n int, dst []uint64) {
	words := WordsFor(n)
	checkPlane("dst", dst, words)
	for w := 0; w < words; w++ {
		dst[w] = bernoulliWord(src, p, planeWordBits(n, w))
	}
}

// FillCorrelatedPlanes fills pa and pb with *maximally correlated*
// n-bit streams of values a and b: each clock draws ONE shared uniform
// sample and thresholds it against both probabilities, so the streams
// overlap as much as their values allow and XOR computes |a−b| exactly
// (the absolute-difference idiom of the edge-detection workload).
//
// Unlike FillPlane, one sample is consumed per bit even for degenerate
// probabilities — the draw is shared, so it cannot be skipped for one
// threshold only. This matches a serial loop that draws r once and
// sets bit i of pa iff r < a and of pb iff r < b.
func FillCorrelatedPlanes(src NumberSource, a, b float64, n int, pa, pb []uint64) {
	words := WordsFor(n)
	checkPlane("pa", pa, words)
	checkPlane("pb", pb, words)
	if sm, ok := src.(*SplitMix64); ok {
		// Devirtualized integer-domain fast path (see probThreshold),
		// with the comparisons made branchless: k and thr both sit
		// far below 2^63, so k < thr iff k−thr wraps, i.e. bit 63 of
		// the difference. Stochastic bits are maximally unpredictable
		// — a branch per comparator would mispredict half the time.
		thrA, thrB := probThreshold(a), probThreshold(b)
		for w := 0; w < words; w++ {
			nbits := planeWordBits(n, w)
			var wa, wb uint64
			for t := 0; t < nbits; t++ {
				k := sm.NextUint64() >> 11
				// LSB-first via shift-in at the top: the word ends
				// with clock t's bit at position t after nbits
				// right-shifts (the partial-word tail is realigned
				// below), with only constant shifts in the loop.
				wa = wa>>1 | (k-thrA)&(1<<63)
				wb = wb>>1 | (k-thrB)&(1<<63)
			}
			if nbits < 64 {
				wa >>= 64 - uint(nbits)
				wb >>= 64 - uint(nbits)
			}
			pa[w], pb[w] = wa, wb
		}
		return
	}
	for w := 0; w < words; w++ {
		nbits := planeWordBits(n, w)
		var wa, wb uint64
		for t := 0; t < nbits; t++ {
			r := src.Next()
			if r < a {
				wa |= 1 << uint(t)
			}
			if r < b {
				wb |= 1 << uint(t)
			}
		}
		pa[w], pb[w] = wa, wb
	}
}

// FillAbsDiffPlane fills dst with the n-bit absolute-difference
// stream |a−b|: exactly FillCorrelatedPlanes followed by XorPlanes of
// the pair, fused so the pair never materializes — bit t is set iff
// the shared draw falls between the two thresholds. Tiled engines use
// this for the XOR-as-absolute-difference gate; the unfused form
// remains for pipelines that need the pair itself.
func FillAbsDiffPlane(src NumberSource, a, b float64, n int, dst []uint64) {
	words := WordsFor(n)
	checkPlane("dst", dst, words)
	if sm, ok := src.(*SplitMix64); ok {
		// Branchless band test (see FillCorrelatedPlanes): the XOR of
		// the two wrap indicators is 1 iff k lands between the
		// thresholds.
		thrA, thrB := probThreshold(a), probThreshold(b)
		for w := 0; w < words; w++ {
			nbits := planeWordBits(n, w)
			var wd uint64
			for t := 0; t < nbits; t++ {
				k := sm.NextUint64() >> 11
				wd = wd>>1 | ((k-thrA)^(k-thrB))&(1<<63)
			}
			if nbits < 64 {
				wd >>= 64 - uint(nbits)
			}
			dst[w] = wd
		}
		return
	}
	for w := 0; w < words; w++ {
		nbits := planeWordBits(n, w)
		var wd uint64
		for t := 0; t < nbits; t++ {
			r := src.Next()
			if (r < a) != (r < b) {
				wd |= 1 << uint(t)
			}
		}
		dst[w] = wd
	}
}

// XorPlanes stores a XOR b into dst word-at-a-time — the correlated
// absolute-difference gate (AbsDiffXOR) on planes. dst may alias a or
// b.
func XorPlanes(dst, a, b []uint64) {
	checkPlane("a", a, len(dst))
	checkPlane("b", b, len(dst))
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}

// AndPlanes stores a AND b into dst — the independent-stream
// multiplier (Multiply) on planes. dst may alias a or b.
func AndPlanes(dst, a, b []uint64) {
	checkPlane("a", a, len(dst))
	checkPlane("b", b, len(dst))
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// NotPlanes stores the complement of a into dst — the 1−v gate
// (Complement) on planes. n is the stream length; bits past n are
// cleared so the zero-tail invariant survives complementing. dst may
// alias a.
func NotPlanes(dst, a []uint64, n int) {
	words := WordsFor(n)
	checkPlane("dst", dst, words)
	checkPlane("a", a, words)
	for i := 0; i < words; i++ {
		dst[i] = ^a[i]
	}
	if rem := uint(n % 64); rem != 0 && words > 0 {
		dst[words-1] &= (1 << rem) - 1
	}
}

// MuxPlanes stores the 2:1 multiplex of a and b under sel into dst:
// output bit t is a's where sel is 0 and b's where sel is 1 — the
// scaled adder (ScaledAdd) on planes. dst may alias any input.
func MuxPlanes(dst, sel, a, b []uint64) {
	checkPlane("sel", sel, len(dst))
	checkPlane("a", a, len(dst))
	checkPlane("b", b, len(dst))
	for i := range dst {
		dst[i] = (a[i] &^ sel[i]) | (b[i] & sel[i])
	}
}

// PlaneOnes returns the number of set bits. With the zero-tail
// invariant maintained by the fill kernels and NotPlanes, this is the
// stream's ones count; value = PlaneOnes(p)/n.
func PlaneOnes(p []uint64) int {
	c := 0
	for _, w := range p {
		c += bits.OnesCount64(w)
	}
	return c
}
