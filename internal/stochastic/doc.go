// Package stochastic implements the stochastic-computing (SC)
// substrate of the reproduction: bit-streams interpreted as
// probabilities, stochastic number generators (SNGs), elementary SC
// arithmetic, Bernstein polynomials, and the electronic ReSC unit of
// Qian et al. that the paper's Fig. 1 summarizes and that the optical
// architecture (internal/core) transposes to the photonic domain.
//
// # Representation
//
// A stochastic bit-stream of length L encodes the value v ∈ [0, 1] as
// a sequence with ⌈vL⌋ ones in random positions; the observed
// fraction of ones is an unbiased estimator of v with variance
// v(1-v)/L. Bitstream stores bits packed 64 per word.
//
// # Generators
//
// SNGs compare a pseudo-random number against the target probability.
// The package provides a maximal-length Galois LFSR (the classic
// hardware SNG), a deterministic counter source (unary SC), a
// chaotic-map source inspired by the chaotic-laser random-bit
// generation the paper cites as future work [20], and an adapter for
// math/rand.
//
// # ReSC
//
// ReSC evaluates a Bernstein polynomial B(x) = Σ b_i B_{i,n}(x) by
// feeding n independent stochastic streams of x into an adder whose
// popcount selects one of n+1 coefficient streams through a
// multiplexer (paper Fig. 1a). The de-randomizer counts ones at the
// output. This electronic unit is the baseline the optical circuit is
// compared against.
package stochastic
