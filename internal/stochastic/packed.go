package stochastic

import (
	"fmt"

	"repro/internal/parallel"
)

// This file is the word-parallel ReSC evaluation engine. The
// bit-serial Step/Evaluate path advances one clock per call; here 64
// clocks are simulated per machine word: the n data bits are summed
// with a bitwise carry-save adder tree over whole words, and the
// coefficient multiplexer is resolved word-at-a-time from the sum's
// bit-planes. Output is bit-identical to the serial path whenever the
// unit's sources are mutually independent (each source is consumed in
// cycle order either way), which the ReSC contract already requires.

// AddPlane adds one 0/1-per-slot word into the bit-planes of a
// per-slot counter: planes[k] holds bit k of each slot's running sum.
// It is a ripple of 64 full adders evaluated as word operations — the
// carry-save adder tree of the packed evaluators (here and in
// internal/core).
func AddPlane(planes []uint64, w uint64) []uint64 {
	for k := 0; w != 0 && k < len(planes); k++ {
		planes[k], w = planes[k]^w, planes[k]&w
	}
	if w != 0 {
		planes = append(planes, w)
	}
	return planes
}

// PlaneEquals returns the indicator word for "slot sum == v": bit t is
// set iff the counter encoded by planes equals v at slot t.
func PlaneEquals(planes []uint64, v int) uint64 {
	if v>>uint(len(planes)) != 0 {
		return 0
	}
	ind := ^uint64(0)
	for k, pl := range planes {
		if v>>uint(k)&1 == 1 {
			ind &= pl
		} else {
			ind &= ^pl
		}
	}
	return ind
}

// EvaluateWords runs `length` clock cycles at input x through the
// word-parallel datapath and returns the de-randomized estimate of
// B(x) with the raw output stream — the packed equivalent of
// Evaluate, 64 cycles per inner iteration. The two paths produce
// identical bitstreams from equal, mutually independent sources.
func (r *ReSC) EvaluateWords(x float64, length int) (float64, *Bitstream) {
	n := r.Degree()
	out := NewBitstream(length)
	var planes []uint64
	coefWords := make([]uint64, n+1)
	for w := 0; w < out.WordCount(); w++ {
		nbits := out.WordBits(w)
		planes = planes[:0]
		for i := 0; i < n; i++ {
			planes = AddPlane(planes, bernoulliWord(r.DataSources[i], x, nbits))
		}
		for i := 0; i <= n; i++ {
			coefWords[i] = bernoulliWord(r.CoefSources[i], r.Poly.Coef[i], nbits)
		}
		var word uint64
		for s := 0; s <= n; s++ {
			word |= PlaneEquals(planes, s) & coefWords[s]
		}
		out.SetWord(w, word)
	}
	return out.Value(), out
}

// DeriveSeed derives the randomness seed for batch input i from a
// base seed: a SplitMix64 step of base+i, so neighbouring indices get
// well-separated generator states. Batch evaluators here and in
// internal/core seed input i's sources from DeriveSeed(seed, i) alone,
// which is what makes their results scheduling-independent.
func DeriveSeed(base uint64, i int) uint64 {
	return NewSplitMix64(base + uint64(i)).NextUint64()
}

// EvaluateBatch evaluates the polynomial at every x in xs with fresh
// `length`-bit streams, fanning the inputs out over a
// runtime.GOMAXPROCS-sized worker pool. Input i is computed by a
// dedicated ReSC whose sources are seeded from (seed, i) only, so the
// result is reproducible regardless of core count or scheduling; each
// input runs through the word-parallel evaluator. It returns an error
// for a non-positive stream length or an unusable polynomial.
func EvaluateBatch(poly BernsteinPoly, xs []float64, length int, seed uint64) ([]float64, error) {
	if length <= 0 {
		return nil, fmt.Errorf("stochastic: stream length %d, need >= 1", length)
	}
	if _, err := NewReSCWithSeeds(poly, seed); err != nil {
		return nil, err
	}
	out := make([]float64, len(xs))
	errs := make([]error, len(xs))
	parallel.For(len(xs), func(i int) {
		r, err := NewReSCWithSeeds(poly, DeriveSeed(seed, i))
		if err != nil {
			// Unreachable after the up-front validation (the checks
			// depend on poly alone), but never drop an error silently.
			errs[i] = err
			return
		}
		out[i], _ = r.EvaluateWords(xs[i], length)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
