package stochastic

import (
	"fmt"
	"math"
)

// NumberSource produces pseudo-random numbers uniform on [0, 1). It
// is the randomness primitive behind every stochastic number
// generator in this package.
type NumberSource interface {
	Next() float64
}

// SNG is a stochastic number generator: it converts probabilities to
// bit-streams by comparing a NumberSource sample against the target
// probability each clock (the comparator architecture of the paper's
// Fig. 1a).
type SNG struct {
	src NumberSource
}

// NewSNG returns a generator drawing from src.
func NewSNG(src NumberSource) *SNG {
	if src == nil {
		panic("stochastic: nil NumberSource")
	}
	return &SNG{src: src}
}

// NextBit emits one stochastic bit with P(1) = p (clamped to [0,1]).
func (g *SNG) NextBit(p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	if g.src.Next() < p {
		return 1
	}
	return 0
}

// Generate emits a stream of n bits each with P(1) = p.
func (g *SNG) Generate(p float64, n int) *Bitstream {
	b := NewBitstream(n)
	for i := 0; i < n; i++ {
		b.Set(i, g.NextBit(p))
	}
	return b
}

// NextWord emits nbits stochastic bits (0 < nbits <= 64) packed
// LSB-first into one word, each with P(1) = p. It consumes the source
// exactly as nbits NextBit calls would, so word-level and bit-level
// generation from equal sources yield identical streams.
func (g *SNG) NextWord(p float64, nbits int) uint64 {
	if nbits < 0 || nbits > 64 {
		panic(fmt.Sprintf("stochastic: NextWord bit count %d out of range [0,64]", nbits))
	}
	return bernoulliWord(g.src, p, nbits)
}

// GenerateWords is Generate assembled word-at-a-time through NextWord:
// bit-identical output for equal sources, without per-bit Set calls.
func (g *SNG) GenerateWords(p float64, n int) *Bitstream {
	b := NewBitstream(n)
	for w := 0; w < b.WordCount(); w++ {
		b.SetWord(w, bernoulliWord(g.src, p, b.WordBits(w)))
	}
	return b
}

// bernoulliWord packs nbits comparator outputs into one word. Like
// NextBit, it consumes no samples for the degenerate probabilities,
// and one sample per bit otherwise. The *SplitMix64 case is the same
// loop with the source devirtualized — the compiler inlines the
// generator there, which matters in the packed evaluators' hot path.
func bernoulliWord(src NumberSource, p float64, nbits int) uint64 {
	if nbits <= 0 || p <= 0 {
		return 0
	}
	all := ^uint64(0) >> (64 - uint(nbits))
	if p >= 1 {
		return all
	}
	var w uint64
	if sm, ok := src.(*SplitMix64); ok {
		// Devirtualized fast path with the comparison moved to the
		// integer domain (see probThreshold in plane.go) and made
		// branchless: k and thr both sit far below 2^63, so k < thr
		// iff k−thr wraps, i.e. bit 63 of the difference. Stochastic
		// bits are maximally unpredictable, so a branch here would
		// mispredict half the time.
		thr := probThreshold(p)
		for b := 0; b < nbits; b++ {
			k := sm.NextUint64() >> 11
			w |= (k - thr) >> 63 << uint(b)
		}
		return w
	}
	for b := 0; b < nbits; b++ {
		if src.Next() < p {
			w |= 1 << uint(b)
		}
	}
	return w
}

// lfsrTaps maps register width to a maximal-length Galois feedback
// mask: bit e-1 is set for each exponent e of the primitive feedback
// polynomial (constant term excluded). Masks for widths 4-25 were
// verified exhaustively to have period 2^w - 1 under the Step update
// rule; the larger widths use the same published tap sets
// ([w, ...] exponent lists from the standard LFSR tap tables).
var lfsrTaps = map[uint]uint64{
	4:  0xC,        // x^4 + x^3 + 1
	5:  0x14,       // x^5 + x^3 + 1
	6:  0x30,       // x^6 + x^5 + 1
	7:  0x60,       // x^7 + x^6 + 1
	8:  0xB8,       // x^8 + x^6 + x^5 + x^4 + 1
	9:  0x110,      // x^9 + x^5 + 1
	10: 0x240,      // x^10 + x^7 + 1
	11: 0x500,      // x^11 + x^9 + 1
	12: 0xE08,      // x^12 + x^11 + x^10 + x^4 + 1
	13: 0x1C80,     // x^13 + x^12 + x^11 + x^8 + 1
	14: 0x3802,     // x^14 + x^13 + x^12 + x^2 + 1
	15: 0x6000,     // x^15 + x^14 + 1
	16: 0xD008,     // x^16 + x^15 + x^13 + x^4 + 1
	17: 0x12000,    // x^17 + x^14 + 1
	18: 0x20400,    // x^18 + x^11 + 1
	19: 0x72000,    // x^19 + x^18 + x^17 + x^14 + 1
	20: 0x90000,    // x^20 + x^17 + 1
	21: 0x140000,   // x^21 + x^19 + 1
	22: 0x300000,   // x^22 + x^21 + 1
	23: 0x420000,   // x^23 + x^18 + 1
	24: 0xE10000,   // x^24 + x^23 + x^22 + x^17 + 1
	25: 0x1200000,  // x^25 + x^22 + 1
	28: 0x9000000,  // x^28 + x^25 + 1
	31: 0x48000000, // x^31 + x^28 + 1
	32: 0x80200003, // x^32 + x^22 + x^2 + x + 1
}

// LFSR is a Galois (one's-complement) linear-feedback shift register,
// the standard hardware stochastic number generator. A width-w
// register cycles through 2^w - 1 non-zero states; Next() normalizes
// the state to [0, 1).
type LFSR struct {
	state uint64
	taps  uint64
	width uint
}

// NewLFSR returns a maximal-length LFSR of the given width seeded
// with seed (zero seeds are mapped to 1, as the all-zero state is
// absorbing). Supported widths are those with known maximal tap sets;
// unsupported widths return an error.
func NewLFSR(width uint, seed uint64) (*LFSR, error) {
	taps, ok := lfsrTaps[width]
	if !ok {
		return nil, fmt.Errorf("stochastic: no maximal-length taps for LFSR width %d", width)
	}
	mask := uint64(1)<<width - 1
	seed &= mask
	if seed == 0 {
		seed = 1
	}
	return &LFSR{state: seed, taps: taps, width: width}, nil
}

// MustLFSR is NewLFSR that panics on error; for use with the
// compile-time-known widths in examples and tests.
func MustLFSR(width uint, seed uint64) *LFSR {
	l, err := NewLFSR(width, seed)
	if err != nil {
		panic(err)
	}
	return l
}

// Step advances the register one clock (Galois right shift) and
// returns the new state.
func (l *LFSR) Step() uint64 {
	lsb := l.state & 1
	l.state >>= 1
	if lsb != 0 {
		l.state ^= l.taps
	}
	return l.state
}

// Next implements NumberSource: the state normalized to [0, 1).
func (l *LFSR) Next() float64 {
	s := l.Step()
	return float64(s-1) / float64(uint64(1)<<l.width-1)
}

// Period returns the sequence period 2^width - 1.
func (l *LFSR) Period() uint64 { return uint64(1)<<l.width - 1 }

// CounterSource is a deterministic ramp over [0, 1): 0, 1/m, 2/m, ...
// Comparing a probability against a ramp produces a unary
// (deterministic, low-discrepancy) bit-stream; it removes random
// fluctuation at the cost of correlation between streams.
type CounterSource struct {
	i, m uint64
}

// NewCounterSource returns a ramp of modulus m (m >= 1).
func NewCounterSource(m uint64) *CounterSource {
	if m == 0 {
		m = 1
	}
	return &CounterSource{m: m}
}

// Next implements NumberSource.
func (c *CounterSource) Next() float64 {
	v := float64(c.i) / float64(c.m)
	c.i = (c.i + 1) % c.m
	return v
}

// ChaoticSource generates uniform samples from the logistic map at
// full chaos (r = 4), x_{k+1} = 4 x_k (1 - x_k), through the
// measure-preserving transform u = (2/π) asin(√x) that flattens the
// map's arcsine-shaped invariant density. It is a deterministic
// software stand-in for the chaotic-laser random bit generators the
// paper proposes for the optical randomizer (future work, ref [20]).
type ChaoticSource struct {
	x float64
}

// NewChaoticSource seeds the map; seeds are folded into (0, 1) and
// the first 64 iterations are discarded to decorrelate from the seed.
func NewChaoticSource(seed float64) *ChaoticSource {
	x := math.Abs(seed)
	x -= math.Floor(x)
	if x == 0 || x == 1 {
		x = 0.379414
	}
	// Avoid the fixed points 0 and 0.75.
	if x == 0.75 {
		x = 0.7379
	}
	c := &ChaoticSource{x: x}
	for i := 0; i < 64; i++ {
		c.step()
	}
	return c
}

func (c *ChaoticSource) step() {
	c.x = 4 * c.x * (1 - c.x)
	// Reinject if the orbit collapses numerically.
	if c.x <= 0 || c.x >= 1 || math.IsNaN(c.x) {
		c.x = 0.379414
	}
}

// Next implements NumberSource.
func (c *ChaoticSource) Next() float64 {
	c.step()
	return 2 / math.Pi * math.Asin(math.Sqrt(c.x))
}

// SplitMix64 is a 64-bit counter-based mixing PRNG (the SplitMix64
// sequence). It is fast, seedable and passes the statistical needs of
// stochastic computing; used as the default software NumberSource.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 seeds the generator.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Reseed resets the generator to the given seed's sequence, as if
// freshly constructed. Tiled engines reuse one generator per worker
// across millions of per-pixel streams instead of allocating one each.
func (s *SplitMix64) Reseed(seed uint64) { s.state = seed }

// NextUint64 advances the sequence.
func (s *SplitMix64) NextUint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Next implements NumberSource.
func (s *SplitMix64) Next() float64 {
	return float64(s.NextUint64()>>11) / float64(uint64(1)<<53)
}
