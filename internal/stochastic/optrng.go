package stochastic

import (
	"fmt"
	"math"
)

// ChaoticLaserSNG is an all-optical stochastic number generator
// modeled on broadband chaotic semiconductor lasers (the paper's
// future-work ref [20]): the laser's chaotic intensity is sampled
// once per bit slot and compared against a threshold; the bit is '1'
// when the intensity exceeds it.
//
// The intensity dynamics are modeled by the fully chaotic logistic
// map, whose invariant density on [0, 1] is the arcsine law
// ρ(I) = 1/(π√(I(1−I))). The threshold realizing P(1) = p is
// therefore the analytic quantile
//
//	θ(p) = sin²(π(1−p)/2)
//
// so — unlike a comparator against a uniform source — the target
// probability is set purely by an optical threshold, with no
// linearization electronics. Consecutive samples are decorrelated by
// discarding a configurable number of map iterations per emitted bit
// (chaotic lasers decorrelate in tens of picoseconds [20]).
type ChaoticLaserSNG struct {
	src *ChaoticSource
	// Decorrelate is the number of extra map iterations dropped
	// between emitted bits (0 = use every sample).
	Decorrelate int
}

// NewChaoticLaserSNG seeds the laser model.
func NewChaoticLaserSNG(seed float64, decorrelate int) (*ChaoticLaserSNG, error) {
	if decorrelate < 0 {
		return nil, fmt.Errorf("stochastic: negative decorrelation %d", decorrelate)
	}
	return &ChaoticLaserSNG{src: NewChaoticSource(seed), Decorrelate: decorrelate}, nil
}

// ThresholdFor returns the optical threshold θ(p) realizing the
// target probability under the arcsine intensity density.
func ThresholdFor(p float64) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	s := math.Sin(math.Pi * (1 - p) / 2)
	return s * s
}

// intensity returns the next raw (arcsine-distributed) intensity
// sample. ChaoticSource.Next applies the uniformizing transform, so
// invert it to recover the physical intensity.
func (g *ChaoticLaserSNG) intensity() float64 {
	u := g.src.Next()
	s := math.Sin(math.Pi / 2 * u)
	return s * s
}

// NextBit emits one stochastic bit with P(1) = p.
func (g *ChaoticLaserSNG) NextBit(p float64) int {
	for i := 0; i < g.Decorrelate; i++ {
		g.src.Next()
	}
	if g.intensity() > ThresholdFor(p) {
		return 1
	}
	return 0
}

// Generate emits an n-bit stream with P(1) = p.
func (g *ChaoticLaserSNG) Generate(p float64, n int) *Bitstream {
	b := NewBitstream(n)
	for i := 0; i < n; i++ {
		b.Set(i, g.NextBit(p))
	}
	return b
}

// AsNumberSource adapts the chaotic laser to the NumberSource
// interface (uniform samples) so it can drive a ReSC or optical unit
// directly.
func (g *ChaoticLaserSNG) AsNumberSource() NumberSource {
	return chaoticAdapter{g}
}

type chaoticAdapter struct{ g *ChaoticLaserSNG }

func (a chaoticAdapter) Next() float64 {
	for i := 0; i < a.g.Decorrelate; i++ {
		a.g.src.Next()
	}
	return a.g.src.Next()
}
