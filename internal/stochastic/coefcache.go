package stochastic

import "sync"

// GammaCoefCache memoizes GammaCorrection fits keyed by
// (gamma, degree) — the coefficient half of the cross-frame gamma
// cache. A ReSC or optical unit re-built for every frame of a video
// workload re-runs the 512-sample least-squares Bernstein fit each
// time; the fit depends on (gamma, degree) alone, so one cached
// polynomial serves every frame. The zero value is ready to use and
// safe for concurrent callers.
//
// Cached polynomials share their coefficient slice across callers and
// must be treated as read-only, which every evaluator in this package
// already does.
type GammaCoefCache struct {
	mu sync.Mutex
	m  map[gammaCoefKey]*gammaCoefEntry
}

type gammaCoefKey struct {
	gamma  float64
	degree int
}

type gammaCoefEntry struct {
	once   sync.Once
	poly   BernsteinPoly
	maxErr float64
	err    error
}

// GammaCorrection returns the cached degree-n Bernstein approximation
// of x^gamma, fitting it on first use — identical to the package-level
// GammaCorrection (errors included). The per-entry build runs outside
// the cache lock, so concurrent misses on distinct keys fit in
// parallel while a shared key is fitted exactly once.
func (c *GammaCoefCache) GammaCorrection(gamma float64, degree int) (BernsteinPoly, float64, error) {
	key := gammaCoefKey{gamma: gamma, degree: degree}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[gammaCoefKey]*gammaCoefEntry)
	}
	e := c.m[key]
	if e == nil {
		e = &gammaCoefEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.poly, e.maxErr, e.err = GammaCorrection(gamma, degree)
	})
	return e.poly, e.maxErr, e.err
}
