package stochastic

import (
	"math"
	"testing"
)

func TestThresholdForQuantiles(t *testing.T) {
	// Analytic checks of the arcsine quantile: p=1/2 -> θ=1/2;
	// extremes clamp.
	if got := ThresholdFor(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("θ(0.5) = %g", got)
	}
	if ThresholdFor(0) != 1 || ThresholdFor(-1) != 1 {
		t.Error("p<=0 must threshold everything out")
	}
	if ThresholdFor(1) != 0 || ThresholdFor(2) != 0 {
		t.Error("p>=1 must pass everything")
	}
	// Monotone decreasing in p.
	prev := 1.1
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cur := ThresholdFor(p)
		if cur >= prev {
			t.Fatalf("θ not decreasing at p=%g", p)
		}
		prev = cur
	}
}

func TestChaoticLaserSNGAccuracy(t *testing.T) {
	g, err := NewChaoticLaserSNG(0.2718, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		b := g.Generate(p, 1<<16)
		if math.Abs(b.Value()-p) > 0.02 {
			t.Errorf("p=%g: estimate %g", p, b.Value())
		}
	}
}

func TestChaoticLaserSNGValidation(t *testing.T) {
	if _, err := NewChaoticLaserSNG(0.3, -1); err == nil {
		t.Error("negative decorrelation accepted")
	}
}

func TestChaoticLaserStreamsUsableByReSC(t *testing.T) {
	// The optical randomizer can drive the electronic ReSC: the
	// paper's full-optical vision for the interfaces (future work
	// iii).
	poly := PaperF1()
	// Distinct seeds and decorrelation counts keep the seven chaotic
	// orbits mutually independent enough for the Bernstein identity.
	mk := func(i int) NumberSource {
		g, err := NewChaoticLaserSNG(0.11+0.097*float64(i), 2+i)
		if err != nil {
			t.Fatal(err)
		}
		return g.AsNumberSource()
	}
	data := []NumberSource{mk(0), mk(1), mk(2)}
	coef := []NumberSource{mk(3), mk(4), mk(5), mk(6)}
	r, err := NewReSC(poly, data, coef)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := r.Evaluate(0.5, 1<<15)
	// Physical RNGs trade a little bias for all-optical generation;
	// allow a slightly wider band than the SplitMix baseline.
	if math.Abs(got-0.5) > 0.03 {
		t.Errorf("chaotic-driven ReSC f1(0.5) = %g", got)
	}
}

func TestChaoticLaserLowSerialCorrelation(t *testing.T) {
	// With decorrelation iterations the bit-to-bit correlation of a
	// p=0.5 stream should be near zero.
	g, err := NewChaoticLaserSNG(0.37, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << 15
	b := g.Generate(0.5, n)
	// Lag-1 serial correlation via the shifted-stream SCC.
	shifted := NewBitstream(n)
	for i := 0; i < n-1; i++ {
		shifted.Set(i, b.Get(i+1))
	}
	if c := Correlation(b, shifted); math.Abs(c) > 0.06 {
		t.Errorf("lag-1 correlation = %g", c)
	}
}

func TestChaoticAdapterUniform(t *testing.T) {
	g, err := NewChaoticLaserSNG(0.41, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := g.AsNumberSource()
	n := 1 << 14
	sum := 0.0
	for i := 0; i < n; i++ {
		v := src.Next()
		if v < 0 || v > 1 {
			t.Fatalf("sample %g outside [0,1]", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Errorf("adapter mean = %g", mean)
	}
}
