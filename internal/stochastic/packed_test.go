package stochastic

import (
	"math"
	"testing"
)

// repPoly returns an SC-representable test polynomial of the given
// degree with coefficients spread over (0, 1).
func repPoly(degree int) BernsteinPoly {
	coef := make([]float64, degree+1)
	for i := range coef {
		coef[i] = 0.1 + 0.8*float64(i)/float64(degree)
	}
	return NewBernstein(coef)
}

func TestGenerateWordsMatchesGenerate(t *testing.T) {
	sources := map[string]func() NumberSource{
		"splitmix": func() NumberSource { return NewSplitMix64(42) },
		"lfsr":     func() NumberSource { return MustLFSR(16, 0xACE1) },
		"chaotic":  func() NumberSource { return NewChaoticSource(0.2) },
		"counter":  func() NumberSource { return NewCounterSource(97) },
	}
	for name, mk := range sources {
		for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
			for _, n := range []int{0, 1, 63, 64, 65, 300} {
				serial := NewSNG(mk()).Generate(p, n)
				packed := NewSNG(mk()).GenerateWords(p, n)
				if serial.Len() != packed.Len() {
					t.Fatalf("%s p=%g n=%d: length %d vs %d", name, p, n, serial.Len(), packed.Len())
				}
				for w := 0; w < serial.WordCount(); w++ {
					if serial.Word(w) != packed.Word(w) {
						t.Errorf("%s p=%g n=%d: word %d differs: %x vs %x",
							name, p, n, w, serial.Word(w), packed.Word(w))
					}
				}
			}
		}
	}
}

func TestNextWordEdgeCases(t *testing.T) {
	g := NewSNG(NewSplitMix64(1))
	if got := g.NextWord(0.5, 0); got != 0 {
		t.Errorf("0-bit word = %x", got)
	}
	if got := g.NextWord(0, 64); got != 0 {
		t.Errorf("p=0 word = %x", got)
	}
	if got := g.NextWord(1, 64); got != ^uint64(0) {
		t.Errorf("p=1 word = %x", got)
	}
	if got := g.NextWord(1, 10); got != (1<<10)-1 {
		t.Errorf("p=1 10-bit word = %x", got)
	}
	// The degenerate probabilities must not consume samples, exactly
	// like NextBit.
	a, b := NewSNG(NewSplitMix64(7)), NewSNG(NewSplitMix64(7))
	a.NextWord(0, 64)
	a.NextWord(1, 64)
	if a.NextWord(0.5, 64) != b.NextWord(0.5, 64) {
		t.Error("degenerate NextWord consumed source samples")
	}
	defer func() {
		if recover() == nil {
			t.Error("NextWord(|65 bits|) did not panic")
		}
	}()
	g.NextWord(0.5, 65)
}

func TestAddPlaneCountsSlots(t *testing.T) {
	words := []uint64{0xF0F0, 0xFF00, 0xAAAA, 0x0001}
	var planes []uint64
	for _, w := range words {
		planes = AddPlane(planes, w)
	}
	for t64 := 0; t64 < 64; t64++ {
		want := 0
		for _, w := range words {
			want += int(w >> uint(t64) & 1)
		}
		got := 0
		for k, pl := range planes {
			got |= int(pl>>uint(t64)&1) << uint(k)
		}
		if got != want {
			t.Fatalf("slot %d: plane sum %d, want %d", t64, got, want)
		}
		for v := 0; v <= len(words); v++ {
			ind := PlaneEquals(planes, v) >> uint(t64) & 1
			if (ind == 1) != (v == want) {
				t.Fatalf("slot %d: PlaneEquals(%d) = %d with sum %d", t64, v, ind, want)
			}
		}
	}
}

// TestEvaluateWordsMatchesEvaluate is the tentpole equivalence
// guarantee: for degrees 2-6 across seeds and awkward lengths, the
// word-parallel evaluator emits a bitstream identical to the
// bit-serial oracle.
func TestEvaluateWordsMatchesEvaluate(t *testing.T) {
	for degree := 2; degree <= 6; degree++ {
		poly := repPoly(degree)
		for _, seed := range []uint64{1, 99, 0xDEADBEEF} {
			for _, length := range []int{1, 63, 64, 65, 1000} {
				for _, x := range []float64{0, 0.3, 0.75, 1} {
					serial, err := NewReSCWithSeeds(poly, seed)
					if err != nil {
						t.Fatal(err)
					}
					packed, err := NewReSCWithSeeds(poly, seed)
					if err != nil {
						t.Fatal(err)
					}
					vs, bs := serial.Evaluate(x, length)
					vp, bp := packed.EvaluateWords(x, length)
					if vs != vp {
						t.Fatalf("deg %d seed %d len %d x=%g: value %g vs %g",
							degree, seed, length, x, vs, vp)
					}
					for w := 0; w < bs.WordCount(); w++ {
						if bs.Word(w) != bp.Word(w) {
							t.Fatalf("deg %d seed %d len %d x=%g: word %d %x vs %x",
								degree, seed, length, x, w, bs.Word(w), bp.Word(w))
						}
					}
				}
			}
		}
	}
}

// TestEvaluateWordsContinues checks the packed evaluator advances the
// sources the same way the serial path does across successive calls.
func TestEvaluateWordsContinues(t *testing.T) {
	poly := repPoly(3)
	serial, _ := NewReSCWithSeeds(poly, 5)
	packed, _ := NewReSCWithSeeds(poly, 5)
	for call := 0; call < 3; call++ {
		_, bs := serial.Evaluate(0.4, 100)
		_, bp := packed.EvaluateWords(0.4, 100)
		for w := 0; w < bs.WordCount(); w++ {
			if bs.Word(w) != bp.Word(w) {
				t.Fatalf("call %d: word %d differs", call, w)
			}
		}
	}
}

func TestEvaluateBatchMatchesPerIndexOracle(t *testing.T) {
	poly := repPoly(4)
	xs := []float64{0, 0.1, 0.5, 0.9, 1, 0.33}
	const length, seed = 777, 31
	got, err := EvaluateBatch(poly, xs, length, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		r, err := NewReSCWithSeeds(poly, DeriveSeed(seed, i))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := r.Evaluate(x, length)
		if got[i] != want {
			t.Errorf("x[%d]=%g: batch %g vs serial oracle %g", i, x, got[i], want)
		}
	}
	// Reproducible across calls (and therefore across pool sizes).
	again, err := EvaluateBatch(poly, xs, length, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Errorf("batch not reproducible at %d: %g vs %g", i, got[i], again[i])
		}
	}
}

func TestEvaluateBatchErrors(t *testing.T) {
	if _, err := EvaluateBatch(repPoly(2), []float64{0.5}, 0, 1); err == nil {
		t.Error("zero stream length accepted")
	}
	if _, err := EvaluateBatch(repPoly(2), []float64{0.5}, -4, 1); err == nil {
		t.Error("negative stream length accepted")
	}
	bad := NewBernstein([]float64{0.5, 1.5})
	if _, err := EvaluateBatch(bad, []float64{0.5}, 64, 1); err == nil {
		t.Error("unrepresentable polynomial accepted")
	}
	if out, err := EvaluateBatch(repPoly(2), nil, 64, 1); err != nil || len(out) != 0 {
		t.Errorf("empty input: %v, %v", out, err)
	}
}

func TestEvaluateBatchConverges(t *testing.T) {
	poly := repPoly(5)
	xs := []float64{0.2, 0.5, 0.8}
	got, err := EvaluateBatch(poly, xs, 1<<15, 2024)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if want := poly.Eval(x); math.Abs(got[i]-want) > 0.015 {
			t.Errorf("x=%g: batch %g vs analytic %g", x, got[i], want)
		}
	}
}

// TestEvaluateBatchRace exercises concurrent batch calls over the
// worker pool; `go test -race` makes this a data-race check.
func TestEvaluateBatchRace(t *testing.T) {
	poly := repPoly(3)
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = float64(i) / 63
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			_, err := EvaluateBatch(poly, xs, 256, 5)
			done <- err
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkReSCEvaluateSerial(b *testing.B) {
	poly := repPoly(6)
	r, err := NewReSCWithSeeds(poly, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096 / 8)
	for i := 0; i < b.N; i++ {
		r.Evaluate(0.5, 4096)
	}
}

func BenchmarkReSCEvaluateWords(b *testing.B) {
	poly := repPoly(6)
	r, err := NewReSCWithSeeds(poly, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096 / 8)
	for i := 0; i < b.N; i++ {
		r.EvaluateWords(0.5, 4096)
	}
}

func BenchmarkEvaluateBatch(b *testing.B) {
	poly := repPoly(6)
	xs := make([]float64, 256)
	for i := range xs {
		xs[i] = float64(i) / 255
	}
	b.SetBytes(int64(len(xs)) * 4096 / 8)
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateBatch(poly, xs, 4096, 1); err != nil {
			b.Fatal(err)
		}
	}
}
