package stochastic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func TestPaperF1Coefficients(t *testing.T) {
	p := PaperF1()
	want := []float64{2.0 / 8, 5.0 / 8, 3.0 / 8, 6.0 / 8}
	if p.Degree() != 3 {
		t.Fatalf("degree = %d", p.Degree())
	}
	for i, w := range want {
		if math.Abs(p.Coef[i]-w) > 1e-12 {
			t.Errorf("coef[%d] = %g, want %g", i, p.Coef[i], w)
		}
	}
	if !p.Representable() {
		t.Error("paper polynomial not representable")
	}
	// f1(0.5) = 0.5 exactly.
	if got := p.Eval(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("f1(0.5) = %g", got)
	}
}

func TestReSCFig1WorkedExample(t *testing.T) {
	// The paper's Fig. 1(b): 8-bit streams for x = 4/8 and the
	// Bernstein coefficients (2/8, 5/8, 3/8, 6/8). The printed output
	// stream is y = 0,1,0,0,1,1,0,1 (4/8), matching f1(0.5) = 0.5.
	x1 := FromBits([]int{0, 0, 0, 1, 1, 0, 1, 1})
	x2 := FromBits([]int{0, 1, 1, 1, 0, 0, 1, 0})
	x3 := FromBits([]int{1, 1, 0, 1, 1, 0, 0, 0})
	z0 := FromBits([]int{0, 0, 0, 1, 0, 1, 0, 0})
	z1 := FromBits([]int{0, 1, 0, 1, 0, 1, 1, 1})
	z2 := FromBits([]int{0, 1, 1, 0, 1, 0, 0, 0})
	z3 := FromBits([]int{1, 1, 1, 0, 1, 1, 0, 1})

	out, sel, err := EvaluateStreams([]*Bitstream{x1, x2, x3}, []*Bitstream{z0, z1, z2, z3})
	if err != nil {
		t.Fatal(err)
	}
	wantSel := []int{1, 2, 1, 3, 2, 0, 2, 1}
	for i, w := range wantSel {
		if sel[i] != w {
			t.Errorf("select[%d] = %d, want %d", i, sel[i], w)
		}
	}
	wantOut := []int{0, 1, 0, 0, 1, 1, 0, 1}
	for i, w := range wantOut {
		if out.Get(i) != w {
			t.Errorf("y[%d] = %d, want %d", i, out.Get(i), w)
		}
	}
	if got := out.Value(); got != 0.5 {
		t.Errorf("de-randomized output = %g, want 4/8", got)
	}
}

func TestEvaluateStreamsErrors(t *testing.T) {
	s8 := NewBitstream(8)
	s9 := NewBitstream(9)
	if _, _, err := EvaluateStreams(nil, []*Bitstream{s8}); err == nil {
		t.Error("no data streams accepted")
	}
	if _, _, err := EvaluateStreams([]*Bitstream{s8}, []*Bitstream{s8}); err == nil {
		t.Error("wrong coefficient count accepted")
	}
	if _, _, err := EvaluateStreams([]*Bitstream{s8, s9}, []*Bitstream{s8, s8, s8}); err == nil {
		t.Error("ragged data accepted")
	}
	if _, _, err := EvaluateStreams([]*Bitstream{s8}, []*Bitstream{s8, s9}); err == nil {
		t.Error("ragged coefficients accepted")
	}
}

func TestNewReSCValidation(t *testing.T) {
	poly := PaperF1()
	if _, err := NewReSC(BernsteinPoly{}, nil, nil); err == nil {
		t.Error("empty polynomial accepted")
	}
	bad := NewBernstein([]float64{0.5, 1.5})
	if _, err := NewReSC(bad, make([]NumberSource, 1), make([]NumberSource, 2)); err == nil {
		t.Error("unrepresentable polynomial accepted")
	}
	if _, err := NewReSC(poly, make([]NumberSource, 2), make([]NumberSource, 4)); err == nil {
		t.Error("wrong data source count accepted")
	}
	if _, err := NewReSC(poly, make([]NumberSource, 3), make([]NumberSource, 3)); err == nil {
		t.Error("wrong coef source count accepted")
	}
}

func TestReSCConvergesToBernstein(t *testing.T) {
	poly := PaperF1()
	r, err := NewReSCWithSeeds(poly, 2024)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got, _ := r.Evaluate(x, 1<<16)
		want := poly.Eval(x)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("x=%g: ReSC %g vs analytic %g", x, got, want)
		}
	}
}

func TestReSCSelectDistribution(t *testing.T) {
	// P(sel = i) should follow the Bernstein basis B_{i,n}(x).
	poly := PaperF1()
	r, _ := NewReSCWithSeeds(poly, 5)
	x := 0.3
	counts := make([]int, poly.Degree()+1)
	n := 1 << 16
	for i := 0; i < n; i++ {
		_, sel := r.Step(x)
		counts[sel]++
	}
	for i := range counts {
		got := float64(counts[i]) / float64(n)
		want := numeric.BernsteinBasis(i, poly.Degree(), x)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(sel=%d) = %g, want %g", i, got, want)
		}
	}
}

func TestReSCPropertyOutputIsProbability(t *testing.T) {
	f := func(seed uint64, xRaw float64) bool {
		x := math.Mod(math.Abs(xRaw), 1)
		poly := PaperF1()
		r, err := NewReSCWithSeeds(poly, seed)
		if err != nil {
			return false
		}
		v, stream := r.Evaluate(x, 512)
		return v >= 0 && v <= 1 && stream.Len() == 512
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReSCSweep(t *testing.T) {
	poly := PaperF1()
	r, _ := NewReSCWithSeeds(poly, 77)
	xs := numeric.Linspace(0, 1, 11)
	got := r.EvaluateSweep(xs, 4096)
	if len(got) != len(xs) {
		t.Fatalf("sweep length %d", len(got))
	}
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = poly.Eval(x)
	}
	if mae := numeric.MeanAbsError(got, want); mae > 0.02 {
		t.Errorf("sweep MAE = %g", mae)
	}
}

func TestGammaCorrectionPoly(t *testing.T) {
	poly, maxErr, err := GammaCorrection(0.45, 6)
	if err != nil {
		t.Fatal(err)
	}
	if poly.Degree() != 6 {
		t.Errorf("degree = %d", poly.Degree())
	}
	if !poly.Representable() {
		t.Error("gamma polynomial not representable")
	}
	if maxErr > 0.1 {
		t.Errorf("gamma maxErr = %g", maxErr)
	}
	if _, _, err := GammaCorrection(-1, 6); err == nil {
		t.Error("negative gamma accepted")
	}
}

func TestBernsteinElevationKeepsRepresentable(t *testing.T) {
	p := PaperF1()
	e := p.Elevate()
	if e.Degree() != p.Degree()+1 {
		t.Fatalf("elevated degree = %d", e.Degree())
	}
	if !e.Representable() {
		t.Error("elevation left [0,1]")
	}
	for _, x := range numeric.Linspace(0, 1, 9) {
		if math.Abs(e.Eval(x)-p.Eval(x)) > 1e-12 {
			t.Errorf("elevation changed value at %g", x)
		}
	}
}

func TestFromPowerMatchesDirectEval(t *testing.T) {
	// Check FromPower against Horner evaluation of the power form.
	p := []float64{0.1, 0.4, -0.2, 0.05}
	bp := FromPower(p)
	for _, x := range numeric.Linspace(0, 1, 13) {
		h := 0.0
		for k := len(p) - 1; k >= 0; k-- {
			h = h*x + p[k]
		}
		if math.Abs(bp.Eval(x)-h) > 1e-12 {
			t.Errorf("x=%g: %g vs %g", x, bp.Eval(x), h)
		}
	}
}

func TestBernsteinString(t *testing.T) {
	s := PaperF1().String()
	if len(s) == 0 || s[:9] != "Bernstein" {
		t.Errorf("String = %q", s)
	}
}

func TestReSCAccuracyImprovesWithLength(t *testing.T) {
	// Longer streams give lower RMS error — the throughput/accuracy
	// trade-off the paper exploits (§V.B).
	poly := PaperF1()
	rms := func(length int) float64 {
		s := 0.0
		trials := 60
		for tr := 0; tr < trials; tr++ {
			r, _ := NewReSCWithSeeds(poly, uint64(300+tr))
			got, _ := r.Evaluate(0.5, length)
			d := got - poly.Eval(0.5)
			s += d * d
		}
		return math.Sqrt(s / float64(trials))
	}
	short := rms(64)
	long := rms(4096)
	if long >= short {
		t.Errorf("RMS did not improve with length: %g -> %g", short, long)
	}
}
