package stochastic

import "math"

// Gaussian draws normal deviates from a uniform NumberSource via the
// Box–Muller transform. It is deterministic given the source, which
// keeps Monte-Carlo sweeps reproducible, and offers both a per-sample
// interface (Next/NextScaled) and block generation (Fill/FillScaled)
// for the word-parallel noisy evaluators. Block and serial generation
// from equal sources produce identical sequences — the cached spare
// deviate included — so the two interfaces can be interleaved freely.
//
// It lives in this leaf package so that both internal/transient (noise
// injection) and internal/core (process-variation yield analysis) can
// share one sampler without an import cycle.
type Gaussian struct {
	src   NumberSource
	spare float64
	has   bool
}

// NewGaussian wraps a uniform source.
func NewGaussian(src NumberSource) *Gaussian {
	if src == nil {
		panic("stochastic: nil NumberSource")
	}
	return &Gaussian{src: src}
}

// pair draws one Box–Muller input pair, rejecting u1 == 0 to avoid
// log(0).
func (g *Gaussian) pair() (u1, u2 float64) {
	for {
		u1 = g.src.Next()
		if u1 > 0 {
			break
		}
	}
	return u1, g.src.Next()
}

// Next returns a standard normal deviate.
func (g *Gaussian) Next() float64 {
	if g.has {
		g.has = false
		return g.spare
	}
	u1, u2 := g.pair()
	r := math.Sqrt(-2 * math.Log(u1))
	sin, cos := math.Sincos(2 * math.Pi * u2)
	g.spare = r * sin
	g.has = true
	return r * cos
}

// NextScaled returns a normal deviate with the given standard
// deviation.
func (g *Gaussian) NextScaled(sigma float64) float64 {
	return sigma * g.Next()
}

// Fill writes len(dst) standard normal deviates, transforming the
// uniform source a Box–Muller pair at a time. It consumes the source
// exactly as len(dst) Next calls would and leaves the same spare
// state behind, so filled and per-sample sequences are bit-identical.
func (g *Gaussian) Fill(dst []float64) {
	i := 0
	if g.has && len(dst) > 0 {
		g.has = false
		dst[0] = g.spare
		i = 1
	}
	for ; i+1 < len(dst); i += 2 {
		u1, u2 := g.pair()
		r := math.Sqrt(-2 * math.Log(u1))
		sin, cos := math.Sincos(2 * math.Pi * u2)
		dst[i], dst[i+1] = r*cos, r*sin
	}
	if i < len(dst) {
		dst[i] = g.Next() // odd tail: generate a pair, cache the spare
	}
}

// FillScaled fills dst with normal deviates of the given standard
// deviation — sigma times the Fill sequence, matching NextScaled.
func (g *Gaussian) FillScaled(dst []float64, sigma float64) {
	g.Fill(dst)
	for i := range dst {
		dst[i] *= sigma
	}
}
