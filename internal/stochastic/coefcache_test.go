package stochastic

import (
	"reflect"
	"sync"
	"testing"
)

// TestGammaCoefCacheMatchesDirect: cache hits return the same fit the
// package-level GammaCorrection computes, errors included.
func TestGammaCoefCacheMatchesDirect(t *testing.T) {
	var c GammaCoefCache
	poly, maxErr, err := c.GammaCorrection(0.45, 6)
	if err != nil {
		t.Fatal(err)
	}
	wantPoly, wantMaxErr, err := GammaCorrection(0.45, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(poly.Coef, wantPoly.Coef) || maxErr != wantMaxErr {
		t.Errorf("cached fit %v (%g) vs direct %v (%g)", poly, maxErr, wantPoly, wantMaxErr)
	}
	again, _, err := c.GammaCorrection(0.45, 6)
	if err != nil {
		t.Fatal(err)
	}
	if &again.Coef[0] != &poly.Coef[0] {
		t.Error("repeated key re-ran the fit (coefficient slices differ)")
	}
	if _, _, err := c.GammaCorrection(-1, 6); err == nil {
		t.Error("invalid gamma accepted")
	}
	if _, _, err := c.GammaCorrection(-1, 6); err == nil {
		t.Error("cached error lost on repeat")
	}
}

// TestGammaCoefCacheConcurrent hammers one shared key and several
// distinct keys from many goroutines — the cache must stay race-free
// (run under -race) and agree with the direct fit.
func TestGammaCoefCacheConcurrent(t *testing.T) {
	var c GammaCoefCache
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, _, err := c.GammaCorrection(0.45, 6); err != nil {
					t.Error(err)
				}
				if _, _, err := c.GammaCorrection(0.45, 2+g%3); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
}
