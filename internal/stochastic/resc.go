package stochastic

import (
	"fmt"
)

// ReSC is the electronic Reconfigurable Stochastic Computing unit of
// Qian et al. summarized in the paper's Fig. 1(a): n data SNGs, n+1
// coefficient SNGs, an adder counting the ones among the data bits,
// and a multiplexer routing coefficient stream z_sum to the output.
// The output counter de-randomizes the result.
//
// It evaluates the Bernstein polynomial B(x) = Σ b_i B_{i,n}(x)
// because P(sum = i) = B_{i,n}(x) when the n data streams are
// independent Bernoulli(x).
type ReSC struct {
	Poly BernsteinPoly
	// DataSources drive the n data SNGs; CoefSources the n+1
	// coefficient SNGs. All must be mutually independent for the
	// Bernstein identity to hold.
	DataSources []NumberSource
	CoefSources []NumberSource
}

// NewReSC wires a ReSC unit for the polynomial with independent
// sources. It returns an error if the polynomial is not
// SC-representable or the source counts do not match the degree.
func NewReSC(poly BernsteinPoly, data, coef []NumberSource) (*ReSC, error) {
	n := poly.Degree()
	if n < 0 {
		return nil, fmt.Errorf("stochastic: empty polynomial")
	}
	if !poly.Representable() {
		return nil, fmt.Errorf("stochastic: polynomial %v has coefficients outside [0,1]", poly)
	}
	if len(data) != n {
		return nil, fmt.Errorf("stochastic: need %d data sources, got %d", n, len(data))
	}
	if len(coef) != n+1 {
		return nil, fmt.Errorf("stochastic: need %d coefficient sources, got %d", n+1, len(coef))
	}
	return &ReSC{Poly: poly, DataSources: data, CoefSources: coef}, nil
}

// NewReSCWithSeeds builds a ReSC whose sources are independent
// SplitMix64 streams derived from seed — the convenient constructor
// for simulations.
func NewReSCWithSeeds(poly BernsteinPoly, seed uint64) (*ReSC, error) {
	n := poly.Degree()
	data := make([]NumberSource, n)
	for i := range data {
		data[i] = NewSplitMix64(seed + uint64(i)*0x9E3779B9 + 1)
	}
	coef := make([]NumberSource, n+1)
	for i := range coef {
		coef[i] = NewSplitMix64(seed + 0xABCDEF + uint64(i)*0x61C88647)
	}
	return NewReSC(poly, data, coef)
}

// Degree returns the polynomial degree n.
func (r *ReSC) Degree() int { return r.Poly.Degree() }

// Step runs one clock cycle for input probability x and returns the
// output bit along with the adder value (the MUX select). As in the
// Fig. 1(a) hardware, every one of the n+1 coefficient SNGs clocks
// each cycle and the multiplexer picks z_sum among them — so each
// source's consumption depends only on the cycle count, which is what
// lets EvaluateWords reproduce this path bit-for-bit word-at-a-time.
func (r *ReSC) Step(x float64) (bit, sel int) {
	n := r.Degree()
	sum := 0
	for i := 0; i < n; i++ {
		if sngBit(r.DataSources[i], x) == 1 {
			sum++
		}
	}
	for i := 0; i <= n; i++ {
		zi := sngBit(r.CoefSources[i], r.Poly.Coef[i])
		if i == sum {
			bit = zi
		}
	}
	return bit, sum
}

func sngBit(src NumberSource, p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	if src.Next() < p {
		return 1
	}
	return 0
}

// Evaluate runs `length` clock cycles at input x and returns the
// de-randomized estimate of B(x) together with the raw output stream.
func (r *ReSC) Evaluate(x float64, length int) (float64, *Bitstream) {
	out := NewBitstream(length)
	for t := 0; t < length; t++ {
		bit, _ := r.Step(x)
		out.Set(t, bit)
	}
	return out.Value(), out
}

// EvaluateStreams runs the combinational ReSC datapath on externally
// supplied bit-streams (the form used by the paper's Fig. 1(b)
// worked example): data[i] are the n streams of x, coef[i] the n+1
// coefficient streams. It returns the output stream and the per-slot
// adder values.
func EvaluateStreams(data []*Bitstream, coef []*Bitstream) (*Bitstream, []int, error) {
	n := len(data)
	if len(coef) != n+1 {
		return nil, nil, fmt.Errorf("stochastic: %d data streams need %d coefficient streams, got %d", n, n+1, len(coef))
	}
	if n == 0 {
		return nil, nil, fmt.Errorf("stochastic: no data streams")
	}
	length := data[0].Len()
	for _, d := range data[1:] {
		if d.Len() != length {
			return nil, nil, fmt.Errorf("stochastic: data stream length mismatch")
		}
	}
	for _, c := range coef {
		if c.Len() != length {
			return nil, nil, fmt.Errorf("stochastic: coefficient stream length mismatch")
		}
	}
	sel := make([]int, length)
	for t := 0; t < length; t++ {
		s := 0
		for _, d := range data {
			s += d.Get(t)
		}
		sel[t] = s
	}
	out := MuxN(sel, coef...)
	return out, sel, nil
}

// EvaluateSweep evaluates the unit at each x in xs with fresh
// `length`-bit streams and returns the estimates. It is the workload
// behind accuracy-vs-stream-length studies; each point runs through
// the packed word-parallel evaluator on the unit's own advancing
// sources, so repeated sweeps give independent estimates (unlike
// core.Unit.EvaluateSweep, whose randomness is seed+index-derived).
func (r *ReSC) EvaluateSweep(xs []float64, length int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i], _ = r.EvaluateWords(x, length)
	}
	return out
}
