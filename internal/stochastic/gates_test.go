package stochastic

import (
	"math"
	"testing"
)

func independentStreams(seed uint64, n int, ps ...float64) []*Bitstream {
	out := make([]*Bitstream, len(ps))
	for i, p := range ps {
		g := NewSNG(NewSplitMix64(seed + uint64(i)*7919))
		out[i] = g.Generate(p, n)
	}
	return out
}

func TestMultiplyGate(t *testing.T) {
	s := independentStreams(1, 1<<16, 0.7, 0.4)
	got := Multiply(s[0], s[1]).Value()
	if math.Abs(got-0.28) > 0.01 {
		t.Errorf("0.7*0.4 = %g", got)
	}
}

func TestScaledAddGate(t *testing.T) {
	s := independentStreams(2, 1<<16, 0.2, 0.8, 0.5)
	got := ScaledAdd(s[2], s[0], s[1]).Value()
	want := 0.5*0.2 + 0.5*0.8
	if math.Abs(got-want) > 0.01 {
		t.Errorf("scaled add = %g, want %g", got, want)
	}
}

func TestComplementGate(t *testing.T) {
	s := independentStreams(3, 1<<14, 0.3)
	if got := Complement(s[0]).Value(); math.Abs(got-0.7) > 0.02 {
		t.Errorf("1-0.3 = %g", got)
	}
}

func TestScaledSubGate(t *testing.T) {
	// With s=1/2: value = (1 - va + vb)/2.
	s := independentStreams(4, 1<<16, 0.6, 0.2, 0.5)
	got := ScaledSub(s[2], s[0], s[1]).Value()
	want := (1 - 0.6 + 0.2) / 2
	if math.Abs(got-want) > 0.01 {
		t.Errorf("scaled sub = %g, want %g", got, want)
	}
}

func TestXORGateIndependent(t *testing.T) {
	s := independentStreams(5, 1<<16, 0.6, 0.3)
	got := AbsDiffXOR(s[0], s[1]).Value()
	want := 0.6*0.7 + 0.3*0.4
	if math.Abs(got-want) > 0.01 {
		t.Errorf("xor = %g, want %g", got, want)
	}
}

func TestXORGateCorrelated(t *testing.T) {
	// Same generator, shared randomness: XOR computes |va - vb|.
	n := 1 << 16
	src := NewSplitMix64(6)
	a, b := NewBitstream(n), NewBitstream(n)
	for i := 0; i < n; i++ {
		r := src.Next()
		if r < 0.65 {
			a.Set(i, 1)
		}
		if r < 0.25 {
			b.Set(i, 1)
		}
	}
	got := AbsDiffXOR(a, b).Value()
	if math.Abs(got-0.40) > 0.01 {
		t.Errorf("|0.65-0.25| = %g", got)
	}
}

func TestSDividerConverges(t *testing.T) {
	d, err := NewSDivider(10)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << 17
	s := independentStreams(7, n, 0.3, 0.6) // 0.3/0.6 = 0.5
	src := NewSplitMix64(8)
	q := d.Divide(s[0], s[1], src)
	// Discard the acquisition transient: measure the back half.
	ones := 0
	for i := n / 2; i < n; i++ {
		ones += q.Get(i)
	}
	got := float64(ones) / float64(n/2)
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("0.3/0.6 = %g, want ~0.5", got)
	}
}

func TestSDividerOtherRatio(t *testing.T) {
	d, _ := NewSDivider(12)
	n := 1 << 17
	s := independentStreams(9, n, 0.2, 0.8) // 0.25
	q := d.Divide(s[0], s[1], NewSplitMix64(10))
	ones := 0
	for i := n / 2; i < n; i++ {
		ones += q.Get(i)
	}
	got := float64(ones) / float64(n/2)
	if math.Abs(got-0.25) > 0.05 {
		t.Errorf("0.2/0.8 = %g, want ~0.25", got)
	}
}

func TestSDividerValidation(t *testing.T) {
	if _, err := NewSDivider(2); err == nil {
		t.Error("width 2 accepted")
	}
	if _, err := NewSDivider(30); err == nil {
		t.Error("width 30 accepted")
	}
}

func TestSDividerLengthMismatchPanics(t *testing.T) {
	d, _ := NewSDivider(8)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	d.Divide(NewBitstream(8), NewBitstream(9), NewSplitMix64(1))
}
