package stochastic

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/numeric"
)

// BernsteinPoly is a polynomial in Bernstein form on [0, 1]. The
// coefficient vector has length degree+1. For single-MUX stochastic
// evaluation (ReSC and the optical circuit alike) every coefficient
// must be a probability, i.e. lie in [0, 1].
type BernsteinPoly struct {
	Coef []float64
}

// NewBernstein copies the coefficients into a polynomial.
func NewBernstein(coef []float64) BernsteinPoly {
	c := make([]float64, len(coef))
	copy(c, coef)
	return BernsteinPoly{Coef: c}
}

// FromPower converts power-basis coefficients (p[k] multiplies x^k)
// into Bernstein form of the same degree.
func FromPower(p []float64) BernsteinPoly {
	return BernsteinPoly{Coef: numeric.PowerToBernstein(p)}
}

// Fit least-squares fits a degree-n Bernstein polynomial to f,
// clamping coefficients into [0, 1] so the result is SC-representable.
// maxErr is the worst-case deviation over the sample grid.
func Fit(f func(float64) float64, degree, samples int) (BernsteinPoly, float64, error) {
	coef, maxErr, err := numeric.FitBernstein(f, degree, samples, true)
	if err != nil {
		return BernsteinPoly{}, 0, err
	}
	return BernsteinPoly{Coef: coef}, maxErr, nil
}

// Degree returns the polynomial degree n (−1 for an empty polynomial).
func (b BernsteinPoly) Degree() int { return len(b.Coef) - 1 }

// Eval evaluates the polynomial at x with de Casteljau's algorithm.
func (b BernsteinPoly) Eval(x float64) float64 {
	return numeric.BernsteinEval(b.Coef, x)
}

// Representable reports whether every coefficient is a probability.
func (b BernsteinPoly) Representable() bool {
	for _, c := range b.Coef {
		if c < 0 || c > 1 {
			return false
		}
	}
	return true
}

// Elevate returns the same polynomial expressed one degree higher.
func (b BernsteinPoly) Elevate() BernsteinPoly {
	return BernsteinPoly{Coef: numeric.BernsteinElevate(b.Coef)}
}

// String renders the coefficients.
func (b BernsteinPoly) String() string {
	parts := make([]string, len(b.Coef))
	for i, c := range b.Coef {
		parts[i] = fmt.Sprintf("b%d=%.4g", i, c)
	}
	return "Bernstein(" + strings.Join(parts, ", ") + ")"
}

// PaperF1 is the paper's running example (Fig. 1b):
//
//	f1(x) = 1/4 + 9/8 x − 15/8 x² + 5/4 x³
//
// whose degree-3 Bernstein coefficients are (2/8, 5/8, 3/8, 6/8).
func PaperF1() BernsteinPoly {
	return FromPower([]float64{1.0 / 4, 9.0 / 8, -15.0 / 8, 5.0 / 4})
}

// GammaCorrection returns the degree-n Bernstein approximation of the
// gamma-correction transfer function x^gamma, the paper's motivating
// 6th-order image-processing application (§V.C). Coefficients are
// clamped to [0, 1].
func GammaCorrection(gamma float64, degree int) (BernsteinPoly, float64, error) {
	if gamma <= 0 {
		return BernsteinPoly{}, 0, fmt.Errorf("stochastic: gamma %g not positive", gamma)
	}
	return Fit(func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return numeric.Clamp(math.Pow(x, gamma), 0, 1)
	}, degree, 512)
}
