package stochastic

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBitstreamBasics(t *testing.T) {
	b := NewBitstream(100)
	if b.Len() != 100 || b.Ones() != 0 || b.Value() != 0 {
		t.Fatal("fresh stream not empty")
	}
	b.Set(0, 1)
	b.Set(63, 1)
	b.Set(64, 1)
	b.Set(99, 1)
	if b.Ones() != 4 {
		t.Errorf("Ones = %d", b.Ones())
	}
	if b.Get(63) != 1 || b.Get(64) != 1 || b.Get(1) != 0 {
		t.Error("Get/Set across word boundary broken")
	}
	b.Set(63, 0)
	if b.Get(63) != 0 || b.Ones() != 3 {
		t.Error("clearing a bit failed")
	}
}

func TestBitstreamPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	b := NewBitstream(8)
	mustPanic("negative length", func() { NewBitstream(-1) })
	mustPanic("get out of range", func() { b.Get(8) })
	mustPanic("set out of range", func() { b.Set(-1, 1) })
	mustPanic("and mismatch", func() { b.And(NewBitstream(9)) })
}

func TestFromBitsAndString(t *testing.T) {
	b := FromBits([]int{0, 1, 1, 0, 1, 0, 0, 0})
	if b.Value() != 3.0/8 {
		t.Errorf("Value = %g", b.Value())
	}
	if s := b.String(); !strings.Contains(s, "(3/8)") {
		t.Errorf("String = %q", s)
	}
	long := NewBitstream(100)
	if s := long.String(); !strings.Contains(s, "0/100") {
		t.Errorf("long String = %q", s)
	}
}

func TestAndIsMultiplier(t *testing.T) {
	// For independent streams, AND multiplies values.
	rng := rand.New(rand.NewSource(7))
	n := 1 << 16
	a, b := NewBitstream(n), NewBitstream(n)
	pa, pb := 0.6, 0.5
	for i := 0; i < n; i++ {
		if rng.Float64() < pa {
			a.Set(i, 1)
		}
		if rng.Float64() < pb {
			b.Set(i, 1)
		}
	}
	got := a.And(b).Value()
	if math.Abs(got-pa*pb) > 0.01 {
		t.Errorf("AND multiply = %g, want ~%g", got, pa*pb)
	}
}

func TestDeMorganProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b := NewBitstream(n), NewBitstream(n)
		for i := 0; i < n; i++ {
			a.Set(i, rng.Intn(2))
			b.Set(i, rng.Intn(2))
		}
		// NOT(a AND b) == NOT a OR NOT b, bit for bit.
		left := a.And(b).Not()
		right := a.Not().Or(b.Not())
		for i := 0; i < n; i++ {
			if left.Get(i) != right.Get(i) {
				return false
			}
		}
		// XOR parity check: a XOR a == 0.
		if a.Xor(a).Ones() != 0 {
			return false
		}
		// NOT value complement.
		return math.Abs(a.Not().Value()-(1-a.Value())) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNotMasksTail(t *testing.T) {
	// Not on a non-multiple-of-64 stream must not count ghost bits.
	b := NewBitstream(10)
	if got := b.Not().Ones(); got != 10 {
		t.Errorf("Not().Ones() = %d, want 10", got)
	}
}

func TestMuxScaledAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 1 << 16
	a, b, sel := NewBitstream(n), NewBitstream(n), NewBitstream(n)
	pa, pb, ps := 0.3, 0.9, 0.25
	for i := 0; i < n; i++ {
		if rng.Float64() < pa {
			a.Set(i, 1)
		}
		if rng.Float64() < pb {
			b.Set(i, 1)
		}
		if rng.Float64() < ps {
			sel.Set(i, 1)
		}
	}
	got := Mux(sel, a, b).Value()
	want := (1-ps)*pa + ps*pb
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Mux scaled add = %g, want ~%g", got, want)
	}
}

func TestMuxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mux with one input did not panic")
		}
	}()
	Mux(NewBitstream(4), NewBitstream(4))
}

func TestMuxNSelectsPerSlot(t *testing.T) {
	z0 := FromBits([]int{1, 1, 1, 1})
	z1 := FromBits([]int{0, 0, 0, 0})
	z2 := FromBits([]int{1, 0, 1, 0})
	out := MuxN([]int{0, 1, 2, 2}, z0, z1, z2)
	want := []int{1, 0, 1, 0}
	for i, w := range want {
		if out.Get(i) != w {
			t.Errorf("bit %d = %d, want %d", i, out.Get(i), w)
		}
	}
}

func TestMuxNPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("no inputs", func() { MuxN([]int{0}) })
	mustPanic("bad select", func() { MuxN([]int{5}, FromBits([]int{1})) })
	mustPanic("length mismatch", func() { MuxN([]int{0, 0}, FromBits([]int{1})) })
}

func TestCorrelationExtremes(t *testing.T) {
	a := FromBits([]int{1, 1, 0, 0})
	if got := Correlation(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %g, want 1", got)
	}
	anti := a.Not()
	if got := Correlation(a, anti); math.Abs(got-(-1)) > 1e-12 {
		t.Errorf("anti correlation = %g, want -1", got)
	}
	if got := Correlation(NewBitstream(0), NewBitstream(0)); got != 0 {
		t.Errorf("empty correlation = %g", got)
	}
}

func TestCorrelationIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 1 << 16
	a, b := NewBitstream(n), NewBitstream(n)
	for i := 0; i < n; i++ {
		a.Set(i, rng.Intn(2))
		b.Set(i, rng.Intn(2))
	}
	if got := Correlation(a, b); math.Abs(got) > 0.02 {
		t.Errorf("independent correlation = %g, want ~0", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromBits([]int{1, 0, 1})
	c := a.Clone()
	c.Set(1, 1)
	if a.Get(1) != 0 {
		t.Error("Clone aliases storage")
	}
}
