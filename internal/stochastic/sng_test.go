package stochastic

import (
	"math"
	"testing"
)

func TestSNGConvergence(t *testing.T) {
	g := NewSNG(NewSplitMix64(99))
	for _, p := range []float64{0.1, 0.5, 0.9} {
		b := g.Generate(p, 1<<16)
		if math.Abs(b.Value()-p) > 0.01 {
			t.Errorf("p=%g: estimate %g", p, b.Value())
		}
	}
}

func TestSNGClamping(t *testing.T) {
	g := NewSNG(NewSplitMix64(1))
	if g.NextBit(-0.5) != 0 || g.NextBit(0) != 0 {
		t.Error("p<=0 should always emit 0")
	}
	if g.NextBit(1) != 1 || g.NextBit(2) != 1 {
		t.Error("p>=1 should always emit 1")
	}
}

func TestSNGNilSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSNG(nil) did not panic")
		}
	}()
	NewSNG(nil)
}

func TestLFSRMaximalPeriodExhaustive(t *testing.T) {
	// Brute-force verify every tabulated mask up to width 20 (width
	// 22 takes ~4M steps; skip the slowest in -short runs).
	if testing.Short() {
		t.Skip("exhaustive LFSR periods skipped in short mode")
	}
	for width := range lfsrTaps {
		if width > 20 {
			continue
		}
		l := MustLFSR(width, 1)
		want := l.Period()
		start := l.state
		var period uint64
		for {
			l.Step()
			period++
			if l.state == start {
				break
			}
			if period > want {
				t.Fatalf("width %d: period exceeds 2^w-1", width)
			}
		}
		if period != want {
			t.Errorf("width %d: period %d, want %d", width, period, want)
		}
	}
}

func TestLFSRMaximalPeriod(t *testing.T) {
	for _, width := range []uint{4, 5, 6, 7, 8} {
		l := MustLFSR(width, 1)
		seen := map[uint64]bool{}
		start := l.state
		period := uint64(0)
		for {
			l.Step()
			period++
			if l.state == start {
				break
			}
			if seen[l.state] {
				t.Fatalf("width %d: cycle without returning to start", width)
			}
			seen[l.state] = true
			if period > l.Period()+1 {
				t.Fatalf("width %d: period exceeds 2^w-1", width)
			}
		}
		if period != l.Period() {
			t.Errorf("width %d: period %d, want %d", width, period, l.Period())
		}
	}
}

func TestLFSRNeverZero(t *testing.T) {
	l := MustLFSR(8, 0) // zero seed must be remapped
	for i := 0; i < 300; i++ {
		if l.Step() == 0 {
			t.Fatal("LFSR reached the absorbing zero state")
		}
	}
}

func TestLFSRUnsupportedWidth(t *testing.T) {
	if _, err := NewLFSR(3, 1); err == nil {
		t.Error("width 3 unexpectedly supported")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLFSR did not panic")
		}
	}()
	MustLFSR(3, 1)
}

func TestLFSRUniformity(t *testing.T) {
	// Over a full period the normalized outputs are equidistributed.
	l := MustLFSR(10, 17)
	n := int(l.Period())
	sum := 0.0
	for i := 0; i < n; i++ {
		v := l.Next()
		if v < 0 || v >= 1 {
			t.Fatalf("Next() = %g outside [0,1)", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("full-period mean = %g, want ~0.5", mean)
	}
}

func TestLFSRSNGAccuracy(t *testing.T) {
	g := NewSNG(MustLFSR(16, 0xACE1))
	b := g.Generate(0.3, 1<<16)
	if math.Abs(b.Value()-0.3) > 0.01 {
		t.Errorf("LFSR SNG estimate = %g", b.Value())
	}
}

func TestCounterSourceRamp(t *testing.T) {
	c := NewCounterSource(4)
	want := []float64{0, 0.25, 0.5, 0.75, 0, 0.25}
	for i, w := range want {
		if got := c.Next(); math.Abs(got-w) > 1e-15 {
			t.Errorf("ramp[%d] = %g, want %g", i, got, w)
		}
	}
	// Unary generation is exact for p = k/m.
	g := NewSNG(NewCounterSource(8))
	b := g.Generate(0.5, 8)
	if b.Ones() != 4 {
		t.Errorf("unary 0.5 over 8 bits = %d ones", b.Ones())
	}
	if got := NewCounterSource(0); got.m != 1 {
		t.Error("zero modulus not clamped")
	}
}

func TestChaoticSourceUniform(t *testing.T) {
	c := NewChaoticSource(0.123456)
	n := 1 << 16
	buckets := make([]int, 10)
	sum := 0.0
	for i := 0; i < n; i++ {
		v := c.Next()
		if v < 0 || v > 1 {
			t.Fatalf("chaotic sample %g outside [0,1]", v)
		}
		idx := int(v * 10)
		if idx == 10 {
			idx = 9
		}
		buckets[idx]++
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Errorf("chaotic mean = %g", mean)
	}
	for i, c := range buckets {
		frac := float64(c) / float64(n)
		if frac < 0.06 || frac > 0.14 {
			t.Errorf("bucket %d fraction %g far from uniform", i, frac)
		}
	}
}

func TestChaoticSourceSeedFolding(t *testing.T) {
	// Degenerate seeds must not produce a stuck orbit.
	for _, seed := range []float64{0, 1, 0.75, -3.5, 1e9} {
		c := NewChaoticSource(seed)
		a, b := c.Next(), c.Next()
		if a == b {
			t.Errorf("seed %g: constant orbit", seed)
		}
	}
}

func TestChaoticSNGAccuracy(t *testing.T) {
	g := NewSNG(NewChaoticSource(0.31))
	b := g.Generate(0.7, 1<<16)
	if math.Abs(b.Value()-0.7) > 0.02 {
		t.Errorf("chaotic SNG estimate = %g", b.Value())
	}
}

func TestSplitMix64Reproducible(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.NextUint64() != b.NextUint64() {
			t.Fatal("same-seed sequences diverge")
		}
	}
	c := NewSplitMix64(43)
	same := 0
	a = NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.NextUint64() == c.NextUint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

func TestSplitMix64Range(t *testing.T) {
	s := NewSplitMix64(7)
	for i := 0; i < 1000; i++ {
		v := s.Next()
		if v < 0 || v >= 1 {
			t.Fatalf("Next() = %g outside [0,1)", v)
		}
	}
}

func TestSNGVarianceScalesInversely(t *testing.T) {
	// SC estimator variance ~ p(1-p)/L: quadrupling the length should
	// roughly halve the error. Averaged over trials to be stable.
	p := 0.5
	trials := 200
	errAt := func(length int) float64 {
		s := 0.0
		for tr := 0; tr < trials; tr++ {
			g := NewSNG(NewSplitMix64(uint64(1000 + tr)))
			v := g.Generate(p, length).Value()
			s += (v - p) * (v - p)
		}
		return math.Sqrt(s / float64(trials))
	}
	e256 := errAt(256)
	e4096 := errAt(4096)
	ratio := e256 / e4096
	if ratio < 2.5 || ratio > 6.5 {
		t.Errorf("error ratio 256->4096 = %g, want ~4", ratio)
	}
}
