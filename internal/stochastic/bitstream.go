package stochastic

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Bitstream is a fixed-length sequence of bits packed 64 per word,
// interpreted as a stochastic number: its value is the fraction of
// ones. The zero value is an empty stream.
type Bitstream struct {
	words []uint64
	n     int
}

// NewBitstream returns an all-zero stream of length n.
func NewBitstream(n int) *Bitstream {
	if n < 0 {
		panic("stochastic: negative bitstream length")
	}
	return &Bitstream{words: make([]uint64, (n+63)/64), n: n}
}

// FromBits builds a stream from a slice of 0/1 ints. Any non-zero
// entry counts as 1.
func FromBits(bits []int) *Bitstream {
	b := NewBitstream(len(bits))
	for i, v := range bits {
		if v != 0 {
			b.Set(i, 1)
		}
	}
	return b
}

// Len returns the stream length in bits.
func (b *Bitstream) Len() int { return b.n }

// WordCount returns the number of 64-bit words backing the stream.
func (b *Bitstream) WordCount() int { return len(b.words) }

// WordBits returns how many bits of word i are in range: 64 for every
// word but possibly the last.
func (b *Bitstream) WordBits(i int) int {
	b.checkWord(i)
	if rem := b.n - i*64; rem < 64 {
		return rem
	}
	return 64
}

// Word returns the i-th 64-bit word, LSB-first (bit 64·i of the
// stream is bit 0 of the word). Bits past Len() are zero.
func (b *Bitstream) Word(i int) uint64 {
	b.checkWord(i)
	return b.words[i]
}

// SetWord assigns the i-th 64-bit word. Bits past Len() are cleared,
// so whole-word writers need not mask the tail themselves.
func (b *Bitstream) SetWord(i int, w uint64) {
	b.checkWord(i)
	b.words[i] = w
	if i == len(b.words)-1 {
		b.maskTail()
	}
}

func (b *Bitstream) checkWord(i int) {
	if i < 0 || i >= len(b.words) {
		panic(fmt.Sprintf("stochastic: word index %d out of range [0,%d)", i, len(b.words)))
	}
}

// Get returns bit i (0 or 1).
func (b *Bitstream) Get(i int) int {
	b.check(i)
	return int(b.words[i/64] >> (uint(i) % 64) & 1)
}

// Set assigns bit i.
func (b *Bitstream) Set(i, v int) {
	b.check(i)
	mask := uint64(1) << (uint(i) % 64)
	if v != 0 {
		b.words[i/64] |= mask
	} else {
		b.words[i/64] &^= mask
	}
}

func (b *Bitstream) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("stochastic: bit index %d out of range [0,%d)", i, b.n))
	}
}

// Ones returns the number of set bits.
func (b *Bitstream) Ones() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Value returns the stochastic value: ones/length. An empty stream
// has value 0.
func (b *Bitstream) Value() float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.Ones()) / float64(b.n)
}

// Clone returns a deep copy.
func (b *Bitstream) Clone() *Bitstream {
	c := NewBitstream(b.n)
	copy(c.words, b.words)
	return c
}

// And returns the bitwise AND of b and o, the stochastic multiplier
// for uncorrelated unipolar streams: E[a·b] = va·vb.
func (b *Bitstream) And(o *Bitstream) *Bitstream {
	b.sameLen(o)
	out := NewBitstream(b.n)
	for i := range b.words {
		out.words[i] = b.words[i] & o.words[i]
	}
	out.maskTail()
	return out
}

// Or returns the bitwise OR of b and o.
func (b *Bitstream) Or(o *Bitstream) *Bitstream {
	b.sameLen(o)
	out := NewBitstream(b.n)
	for i := range b.words {
		out.words[i] = b.words[i] | o.words[i]
	}
	out.maskTail()
	return out
}

// Xor returns the bitwise XOR of b and o.
func (b *Bitstream) Xor(o *Bitstream) *Bitstream {
	b.sameLen(o)
	out := NewBitstream(b.n)
	for i := range b.words {
		out.words[i] = b.words[i] ^ o.words[i]
	}
	out.maskTail()
	return out
}

// Not returns the bitwise complement, the stochastic 1-v operation.
func (b *Bitstream) Not() *Bitstream {
	out := NewBitstream(b.n)
	for i := range b.words {
		out.words[i] = ^b.words[i]
	}
	out.maskTail()
	return out
}

// maskTail clears the unused high bits of the last word so popcounts
// stay correct after whole-word operations like Not.
func (b *Bitstream) maskTail() {
	if rem := uint(b.n % 64); rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

func (b *Bitstream) sameLen(o *Bitstream) {
	if b.n != o.n {
		panic(fmt.Sprintf("stochastic: length mismatch %d vs %d", b.n, o.n))
	}
}

// Mux selects per-slot between inputs according to sel: output bit i
// is inputs[sel.Get(i)].Get(i). With a select stream of value s this
// computes the scaled addition s·b + (1-s)·a for inputs (a, b).
func Mux(sel *Bitstream, inputs ...*Bitstream) *Bitstream {
	if len(inputs) != 2 {
		panic("stochastic: binary Mux needs exactly 2 inputs")
	}
	a, b := inputs[0], inputs[1]
	a.sameLen(b)
	a.sameLen(sel)
	out := NewBitstream(a.n)
	for i := range out.words {
		out.words[i] = (a.words[i] &^ sel.words[i]) | (b.words[i] & sel.words[i])
	}
	out.maskTail()
	return out
}

// MuxN selects per-slot among len(inputs) streams according to the
// integer select values sel[i] ∈ [0, len(inputs)). This is the wide
// multiplexer of the ReSC architecture (paper Fig. 1a). Out-of-range
// selects panic: they indicate a broken adder.
//
// All selects are validated up front; the output is then assembled
// word-at-a-time straight from the input words, with no per-bit
// bounds rechecking.
func MuxN(sel []int, inputs ...*Bitstream) *Bitstream {
	if len(inputs) == 0 {
		panic("stochastic: MuxN needs at least one input")
	}
	n := inputs[0].n
	for _, in := range inputs[1:] {
		inputs[0].sameLen(in)
	}
	if len(sel) != n {
		panic(fmt.Sprintf("stochastic: select length %d vs stream length %d", len(sel), n))
	}
	for _, s := range sel {
		if s < 0 || s >= len(inputs) {
			panic(fmt.Sprintf("stochastic: select %d out of range [0,%d)", s, len(inputs)))
		}
	}
	out := NewBitstream(n)
	for w := range out.words {
		base := w * 64
		nbits := out.WordBits(w)
		var word uint64
		for b := 0; b < nbits; b++ {
			word |= inputs[sel[base+b]].words[w] >> uint(b) & 1 << uint(b)
		}
		out.words[w] = word
	}
	return out
}

// Correlation returns the stochastic cross-correlation (SCC) of two
// equal-length streams, in [-1, 1]: +1 for maximally overlapping
// ones, -1 for maximally anti-overlapping, 0 for independence.
func Correlation(a, b *Bitstream) float64 {
	a.sameLen(b)
	n := float64(a.n)
	if n == 0 {
		return 0
	}
	pa, pb := a.Value(), b.Value()
	pab := a.And(b).Value()
	d := pab - pa*pb
	if d == 0 {
		return 0
	}
	var denom float64
	if d > 0 {
		denom = math.Min(pa, pb) - pa*pb
	} else {
		denom = pa*pb - math.Max(pa+pb-1, 0)
	}
	if denom == 0 {
		return 0
	}
	return d / denom
}

// String renders short streams as e.g. "0,1,1,0 (2/4)"; longer
// streams render the counts only.
func (b *Bitstream) String() string {
	if b.n <= 32 {
		parts := make([]string, b.n)
		for i := 0; i < b.n; i++ {
			parts[i] = fmt.Sprint(b.Get(i))
		}
		return fmt.Sprintf("%s (%d/%d)", strings.Join(parts, ","), b.Ones(), b.n)
	}
	return fmt.Sprintf("bitstream(%d/%d)", b.Ones(), b.n)
}
