package stochastic

import (
	"math"
	"testing"
)

// planeToBitstream copies an n-bit plane into a Bitstream for
// comparison against the reference gate implementations.
func planeToBitstream(p []uint64, n int) *Bitstream {
	b := NewBitstream(n)
	for w := 0; w < b.WordCount(); w++ {
		b.SetWord(w, p[w])
	}
	return b
}

func TestWordsFor(t *testing.T) {
	for _, tc := range [][2]int{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}} {
		if got := WordsFor(tc[0]); got != tc[1] {
			t.Errorf("WordsFor(%d) = %d, want %d", tc[0], got, tc[1])
		}
	}
}

func TestProbThreshold(t *testing.T) {
	if probThreshold(0) != 0 || probThreshold(-3) != 0 {
		t.Error("degenerate zero threshold")
	}
	if probThreshold(1) != 1<<53 || probThreshold(2) != 1<<53 {
		t.Error("degenerate one threshold")
	}
	if probThreshold(0.5) != 1<<52 {
		t.Errorf("threshold(0.5) = %d", probThreshold(0.5))
	}
}

// TestFillPlaneMatchesGenerate: the plane fill is SNG.Generate without
// the Bitstream — identical bits from equal sources, for both the
// devirtualized SplitMix64 path and a generic source.
func TestFillPlaneMatchesGenerate(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 1000} {
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
			want := NewSNG(NewSplitMix64(42)).Generate(p, n)
			plane := make([]uint64, WordsFor(n))
			FillPlane(NewSplitMix64(42), p, n, plane)
			for w := 0; w < want.WordCount(); w++ {
				if plane[w] != want.Word(w) {
					t.Fatalf("n=%d p=%g word %d: %x vs %x", n, p, w, plane[w], want.Word(w))
				}
			}

			wantL := NewSNG(MustLFSR(16, 5)).Generate(p, n)
			FillPlane(MustLFSR(16, 5), p, n, plane)
			for w := 0; w < wantL.WordCount(); w++ {
				if plane[w] != wantL.Word(w) {
					t.Fatalf("LFSR n=%d p=%g word %d differs", n, p, w)
				}
			}
		}
	}
}

// referenceCorrelatedPair is the serial definition the kernel must
// match: one shared draw per clock, thresholded against both values.
func referenceCorrelatedPair(src NumberSource, a, b float64, n int) (*Bitstream, *Bitstream) {
	sa, sb := NewBitstream(n), NewBitstream(n)
	for i := 0; i < n; i++ {
		r := src.Next()
		if r < a {
			sa.Set(i, 1)
		}
		if r < b {
			sb.Set(i, 1)
		}
	}
	return sa, sb
}

func TestFillCorrelatedPlanesMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 64, 65, 777} {
		for _, pair := range [][2]float64{{0.3, 0.7}, {0, 1}, {0.5, 0.5}, {1, 0.2}, {0, 0}} {
			a, b := pair[0], pair[1]
			wa, wb := referenceCorrelatedPair(NewSplitMix64(9), a, b, n)
			pa := make([]uint64, WordsFor(n))
			pb := make([]uint64, WordsFor(n))
			FillCorrelatedPlanes(NewSplitMix64(9), a, b, n, pa, pb)
			for w := 0; w < wa.WordCount(); w++ {
				if pa[w] != wa.Word(w) || pb[w] != wb.Word(w) {
					t.Fatalf("n=%d (%g,%g) word %d: (%x,%x) vs (%x,%x)",
						n, a, b, w, pa[w], pb[w], wa.Word(w), wb.Word(w))
				}
			}

			// Generic-source path (no SplitMix64 devirtualization).
			ga, gb := referenceCorrelatedPair(NewChaoticSource(0.11), a, b, n)
			FillCorrelatedPlanes(NewChaoticSource(0.11), a, b, n, pa, pb)
			for w := 0; w < ga.WordCount(); w++ {
				if pa[w] != ga.Word(w) || pb[w] != gb.Word(w) {
					t.Fatalf("chaotic n=%d (%g,%g) word %d differs", n, a, b, w)
				}
			}
		}
	}
}

// TestFillCorrelatedPlanesConsumption: the pair fill always consumes
// one draw per clock — even for degenerate probabilities, because the
// draw is shared — so differently parameterized fills stay aligned.
func TestFillCorrelatedPlanesConsumption(t *testing.T) {
	const n = 130
	pa := make([]uint64, WordsFor(n))
	pb := make([]uint64, WordsFor(n))
	src := NewSplitMix64(3)
	FillCorrelatedPlanes(src, 0, 1, n, pa, pb)
	ref := NewSplitMix64(3)
	for i := 0; i < n; i++ {
		ref.Next()
	}
	if src.Next() != ref.Next() {
		t.Error("degenerate pair fill consumed wrong number of draws")
	}
	if PlaneOnes(pa) != 0 || PlaneOnes(pb) != n {
		t.Errorf("degenerate fill: %d / %d ones", PlaneOnes(pa), PlaneOnes(pb))
	}
}

// TestCorrelatedXorIsAbsDiff: the whole point of sharing the draw —
// XOR of the pair converges to |a−b|, far below the independent-stream
// expectation a(1−b) + b(1−a).
func TestCorrelatedXorIsAbsDiff(t *testing.T) {
	const n = 1 << 16
	a, b := 0.7, 0.45
	pa := make([]uint64, WordsFor(n))
	pb := make([]uint64, WordsFor(n))
	FillCorrelatedPlanes(NewSplitMix64(1), a, b, n, pa, pb)
	d := make([]uint64, WordsFor(n))
	XorPlanes(d, pa, pb)
	got := float64(PlaneOnes(d)) / n
	if math.Abs(got-math.Abs(a-b)) > 0.01 {
		t.Errorf("correlated XOR = %g, want |a-b| = %g", got, math.Abs(a-b))
	}
	if c := Correlation(planeToBitstream(pa, n), planeToBitstream(pb, n)); c < 0.99 {
		t.Errorf("pair correlation = %g, want ~1", c)
	}
}

// TestFillAbsDiffPlaneMatchesPairXor: the fused gate equals the
// correlated pair followed by XOR, on both source paths.
func TestFillAbsDiffPlaneMatchesPairXor(t *testing.T) {
	for _, n := range []int{1, 64, 65, 777} {
		for _, pair := range [][2]float64{{0.3, 0.7}, {0, 1}, {0.5, 0.5}, {1, 0.2}, {0.9, 0.9}} {
			a, b := pair[0], pair[1]
			words := WordsFor(n)
			pa := make([]uint64, words)
			pb := make([]uint64, words)
			want := make([]uint64, words)
			got := make([]uint64, words)

			FillCorrelatedPlanes(NewSplitMix64(13), a, b, n, pa, pb)
			XorPlanes(want, pa, pb)
			FillAbsDiffPlane(NewSplitMix64(13), a, b, n, got)
			for w := range want {
				if got[w] != want[w] {
					t.Fatalf("n=%d (%g,%g) word %d: %x vs %x", n, a, b, w, got[w], want[w])
				}
			}

			FillCorrelatedPlanes(NewChaoticSource(0.2), a, b, n, pa, pb)
			XorPlanes(want, pa, pb)
			FillAbsDiffPlane(NewChaoticSource(0.2), a, b, n, got)
			for w := range want {
				if got[w] != want[w] {
					t.Fatalf("chaotic n=%d (%g,%g) word %d differs", n, a, b, w)
				}
			}
		}
	}
}

func TestFillAbsDiffPlaneValue(t *testing.T) {
	const n = 1 << 16
	d := make([]uint64, WordsFor(n))
	FillAbsDiffPlane(NewSplitMix64(2), 0.8, 0.15, n, d)
	if got := float64(PlaneOnes(d)) / n; math.Abs(got-0.65) > 0.01 {
		t.Errorf("|0.8-0.15| stream = %g", got)
	}
}

// TestPlaneCombinatorsMatchBitstreamGates checks each plane combinator
// against the allocating Bitstream gate it replaces.
func TestPlaneCombinatorsMatchBitstreamGates(t *testing.T) {
	const n = 200
	words := WordsFor(n)
	mk := func(p float64, seed uint64) ([]uint64, *Bitstream) {
		pl := make([]uint64, words)
		FillPlane(NewSplitMix64(seed), p, n, pl)
		return pl, planeToBitstream(pl, n)
	}
	pa, ba := mk(0.6, 1)
	pb, bb := mk(0.3, 2)
	ps, bs := mk(0.5, 3)
	dst := make([]uint64, words)

	check := func(name string, want *Bitstream) {
		t.Helper()
		for w := 0; w < want.WordCount(); w++ {
			if dst[w] != want.Word(w) {
				t.Fatalf("%s word %d: %x vs %x", name, w, dst[w], want.Word(w))
			}
		}
	}
	XorPlanes(dst, pa, pb)
	check("xor", ba.Xor(bb))
	AndPlanes(dst, pa, pb)
	check("and", ba.And(bb))
	MuxPlanes(dst, ps, pa, pb)
	check("mux", Mux(bs, ba, bb))
	NotPlanes(dst, pa, n)
	check("not", ba.Not())
	// The complement must preserve the zero-tail invariant.
	if dst[words-1]>>(uint(n%64)) != 0 {
		t.Error("NotPlanes left tail bits set")
	}
	if got := PlaneOnes(dst); got != n-ba.Ones() {
		t.Errorf("complement ones = %d, want %d", got, n-ba.Ones())
	}
}

// TestPlaneAliasing: combinators allow dst to alias an input — the
// scratch-reuse pattern of the tiled engines.
func TestPlaneAliasing(t *testing.T) {
	const n = 100
	words := WordsFor(n)
	pa := make([]uint64, words)
	pb := make([]uint64, words)
	FillPlane(NewSplitMix64(4), 0.4, n, pa)
	FillPlane(NewSplitMix64(5), 0.8, n, pb)
	want := planeToBitstream(pa, n).Xor(planeToBitstream(pb, n))
	XorPlanes(pa, pa, pb)
	for w := 0; w < want.WordCount(); w++ {
		if pa[w] != want.Word(w) {
			t.Fatalf("aliased xor word %d differs", w)
		}
	}
}

func TestPlaneSizePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	short := make([]uint64, 1)
	ok := make([]uint64, 2)
	mustPanic("FillPlane", func() { FillPlane(NewSplitMix64(1), 0.5, 100, short) })
	mustPanic("FillCorrelatedPlanes", func() {
		FillCorrelatedPlanes(NewSplitMix64(1), 0.5, 0.5, 100, ok, short)
	})
	mustPanic("XorPlanes", func() { XorPlanes(ok, ok, short) })
	mustPanic("MuxPlanes", func() { MuxPlanes(ok, short, ok, ok) })
	mustPanic("NotPlanes", func() { NotPlanes(short, short, 100) })
}

func TestSplitMix64Reseed(t *testing.T) {
	s := NewSplitMix64(7)
	first := s.NextUint64()
	s.NextUint64()
	s.Reseed(7)
	if got := s.NextUint64(); got != first {
		t.Errorf("reseeded sequence diverged: %x vs %x", got, first)
	}
}
