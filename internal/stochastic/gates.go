package stochastic

import (
	"fmt"
)

// Elementary stochastic arithmetic (Gaines [7], Poppelbaum [8]): the
// unipolar operations the ReSC architecture composes. Each gate is a
// pure function of bit-streams; accuracy follows from stream
// independence exactly as in the hardware.

// Multiply returns the unipolar product stream: AND of independent
// streams computes E = va·vb.
func Multiply(a, b *Bitstream) *Bitstream {
	return a.And(b)
}

// ScaledAdd returns the unipolar scaled addition
// s·b + (1−s)·a, implemented by a 2:1 multiplexer whose select
// stream carries probability s. The result stays in [0, 1] — SC's
// closure property.
func ScaledAdd(sel, a, b *Bitstream) *Bitstream {
	return Mux(sel, a, b)
}

// Complement returns the 1−v stream (NOT gate).
func Complement(a *Bitstream) *Bitstream {
	return a.Not()
}

// ScaledSub returns the unipolar scaled subtraction
// s·b + (1−s)·(1−a) … the standard SC "subtractor" composes a
// complement with a scaled add; for s = 1/2 the output value is
// (1 − va + vb)/2.
func ScaledSub(sel, a, b *Bitstream) *Bitstream {
	return Mux(sel, a.Not(), b)
}

// AbsDiffXOR returns the XOR stream. For *correlated* (identically
// generated) inputs XOR computes |va − vb|; for independent inputs it
// computes va(1−vb) + vb(1−va).
func AbsDiffXOR(a, b *Bitstream) *Bitstream {
	return a.Xor(b)
}

// SDivider approximates unipolar division vb = va/vd (va <= vd) with
// the classic feedback counter divider: an up/down saturating counter
// integrates the error between the input stream and the quotient
// estimate gated by the divisor stream.
type SDivider struct {
	// Bits is the counter width; the quotient resolution is 2^-Bits.
	Bits    uint
	counter uint64
}

// NewSDivider returns a divider with the given counter width (4..24).
func NewSDivider(bits uint) (*SDivider, error) {
	if bits < 4 || bits > 24 {
		return nil, fmt.Errorf("stochastic: divider width %d outside [4,24]", bits)
	}
	return &SDivider{Bits: bits, counter: 1 << (bits - 1)}, nil
}

// Step consumes one bit of the dividend and divisor streams and
// returns the current quotient bit. src supplies the comparator
// randomness.
//
// The feedback integrates err = dividend − (quotient AND divisor);
// at equilibrium E[err] = 0, i.e. va = q·vd, so q → va/vd.
func (d *SDivider) Step(dividendBit, divisorBit int, src NumberSource) int {
	max := uint64(1)<<d.Bits - 1
	// Quotient estimate as a probability.
	q := float64(d.counter) / float64(max)
	out := 0
	if src.Next() < q {
		out = 1
	}
	up := dividendBit == 1
	down := out == 1 && divisorBit == 1
	if up && !down && d.counter < max {
		d.counter++
	} else if down && !up && d.counter > 0 {
		d.counter--
	}
	return out
}

// Divide runs the divider over whole streams and returns the quotient
// stream. Streams must have equal length.
func (d *SDivider) Divide(dividend, divisor *Bitstream, src NumberSource) *Bitstream {
	dividend.sameLen(divisor)
	out := NewBitstream(dividend.Len())
	for i := 0; i < dividend.Len(); i++ {
		out.Set(i, d.Step(dividend.Get(i), divisor.Get(i), src))
	}
	return out
}
