// Cross-package integration tests: end-to-end scenarios exercising
// the whole stack the way a user of the library would.
package repro_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/dse"
	img "repro/internal/image"
	"repro/internal/numeric"
	"repro/internal/optics"
	"repro/internal/stochastic"
	"repro/internal/transient"
)

// TestEndToEndPaperPipeline walks the full §V story: design the
// reference circuit, verify its Fig. 5 bands, run a polynomial on it,
// cross-check the electronic baseline, then push it through the noisy
// transient simulator.
func TestEndToEndPaperPipeline(t *testing.T) {
	// 1. Design (§V.A).
	p, err := core.MRRFirst(core.MRRFirstSpec{
		Order:       2,
		WLSpacingNM: 1.0,
		ModShape:    core.Fig5ModulatorShape(),
		FilterShape: core.Fig5FilterShape(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.PumpPowerMW-591.8) > 0.5 {
		t.Fatalf("pump %g", p.PumpPowerMW)
	}
	// Use the paper's 1 mW probes rather than the BER-minimal ones.
	p.ProbePowerMW = 1.0
	c, err := core.NewCircuit(p)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Fig. 5(c) bands hold on the designed circuit.
	_, maxZ, minO, _ := c.PowerBands()
	if maxZ >= minO {
		t.Fatalf("bands overlap: %g vs %g", maxZ, minO)
	}

	// 3. Optical evaluation matches the electronic baseline.
	poly := stochastic.NewBernstein([]float64{0.3, 0.8, 0.5})
	unit, err := core.NewUnit(c, poly, 1001)
	if err != nil {
		t.Fatal(err)
	}
	resc, err := stochastic.NewReSCWithSeeds(poly, 2002)
	if err != nil {
		t.Fatal(err)
	}
	xs := numeric.Linspace(0, 1, 9)
	const bits = 1 << 13
	for _, x := range xs {
		want := poly.Eval(x)
		opt, _ := unit.Evaluate(x, bits)
		ele, _ := resc.Evaluate(x, bits)
		if math.Abs(opt-want) > 0.03 || math.Abs(ele-want) > 0.03 {
			t.Errorf("x=%g: optical %g electronic %g analytic %g", x, opt, ele, want)
		}
	}

	// 4. The noisy link at 1 mW probes is effectively error-free.
	sim := transient.NewSimulator(unit, 3003)
	ber, err := sim.MeasureWorstCaseBER(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if ber > 1e-3 {
		t.Errorf("transient BER %g at 1 mW probes", ber)
	}
}

// TestEndToEndImagePipeline runs gamma correction through the optical
// unit and checks the image quality a user would see.
func TestEndToEndImagePipeline(t *testing.T) {
	src := img.Gradient(64, 4)
	exact := img.GammaExact(src, 0.45)
	opt, err := img.GammaOptical(src, 0.45, 6, 0.3, 2048, 4004)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := img.PSNR(exact, opt); psnr < 20 {
		t.Errorf("end-to-end PSNR %g dB", psnr)
	}
}

// TestEndToEndCalibratedDriftRecovery closes the loop between the
// control package and the core circuit: drift degrades the eye, the
// calibration loop's residual restores it.
func TestEndToEndCalibratedDriftRecovery(t *testing.T) {
	env, err := control.NewThermalEnvironment(5, 1e-3, 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	heater, err := control.NewHeater(0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	target := core.PaperParams().LambdaRefNM()
	ring := control.NewDriftedRing(target-0.5, env, heater)
	mon, err := control.NewMonitor(0.05, 1e-5, 8)
	if err != nil {
		t.Fatal(err)
	}
	loop, err := control.NewLoop(ring, core.DenseFilterShape().At(ring.ColdResonanceNM), target, 1.0, mon)
	if err != nil {
		t.Fatal(err)
	}
	samples := loop.Run(3000)
	worst := 0.0
	for _, s := range samples[len(samples)/2:] {
		if a := math.Abs(s.MisalignNM); a > worst {
			worst = a
		}
	}
	eye := func(drift float64) float64 {
		p := core.PaperParams()
		p.FilterOffsetNM += drift
		return core.MustCircuit(p).EyeOpeningMW()
	}
	if lost := eye(0) - eye(worst); lost > 0.1*eye(0) {
		t.Errorf("locked residual %.4f nm still costs %.1f%% of the eye", worst, 100*lost/eye(0))
	}
}

// TestFigureHarnessSmoke renders every figure to one buffer — the
// `oscbench -fig all` path — and sanity-checks the anchors appear.
func TestFigureHarnessSmoke(t *testing.T) {
	var sb strings.Builder
	if err := dse.RenderFig5Case(&sb, dse.Fig5A()); err != nil {
		t.Fatal(err)
	}
	if err := dse.RenderFig5C(&sb, dse.Fig5C()); err != nil {
		t.Fatal(err)
	}
	s, err := dse.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if err := dse.RenderSummary(&sb, s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, anchor := range []string{"591.8", "13.22", "0.165"} {
		if !strings.Contains(out, anchor) {
			t.Errorf("summary missing paper anchor %q", anchor)
		}
	}
}

// TestAPDEndToEnd exercises the future-work APD through the full
// design flow: the same BER target with less probe light.
func TestAPDEndToEnd(t *testing.T) {
	pin := core.DefaultDetector()
	apd := optics.PaperAPD(pin.NoiseCurrentA).EffectiveDetector()

	spec := core.MRRFirstSpec{Order: 2, WLSpacingNM: 0.165}
	basePin, err := core.MRRFirst(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Detector = apd
	baseAPD, err := core.MRRFirst(spec)
	if err != nil {
		t.Fatal(err)
	}
	if baseAPD.ProbePowerMW >= basePin.ProbePowerMW {
		t.Errorf("APD design probe %g not below pin %g", baseAPD.ProbePowerMW, basePin.ProbePowerMW)
	}
	// And the energy breakdown reflects it.
	ePin, eAPD := core.ParamsEnergy(basePin), core.ParamsEnergy(baseAPD)
	if eAPD.ProbePJ >= ePin.ProbePJ {
		t.Error("APD probe energy not reduced")
	}
}

// TestChaoticRandomizerOnOpticalUnit drives the optical unit's SNGs
// from the chaotic-laser model — the all-optical randomizer vision.
func TestChaoticRandomizerOnOpticalUnit(t *testing.T) {
	// The Unit seeds SplitMix internally; emulate an all-optical
	// datapath by Monte-Carlo-ing the ReSC semantics with every
	// stream produced by a chaotic-laser SNG.
	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75})
	// Monte-Carlo the Bernstein identity with chaotic data streams.
	const bits = 1 << 15
	x := 0.5
	acc := 0.0
	zs := make([]*stochastic.ChaoticLaserSNG, 3)
	for i := range zs {
		zi, err := stochastic.NewChaoticLaserSNG(0.51+0.11*float64(i), 2+i)
		if err != nil {
			t.Fatal(err)
		}
		zs[i] = zi
	}
	dataA, _ := stochastic.NewChaoticLaserSNG(0.67, 4)
	dataB, _ := stochastic.NewChaoticLaserSNG(0.83, 5)
	for k := 0; k < bits; k++ {
		w := dataA.NextBit(x) + dataB.NextBit(x)
		acc += float64(zs[w].NextBit(poly.Coef[w]))
	}
	got := acc / bits
	if want := poly.Eval(x); math.Abs(got-want) > 0.03 {
		t.Errorf("chaotic optical ReSC = %g, want %g", got, want)
	}
}
