// Benchmarks regenerating every table/figure of the paper (one bench
// per artifact, per DESIGN.md §4) plus ablations of the design
// choices. Custom metrics report the reproduced quantities so that
// `go test -bench` output doubles as a results table:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/dse"
	img "repro/internal/image"
	"repro/internal/netlist"
	"repro/internal/photonic"
	"repro/internal/stochastic"
	"repro/internal/transient"
)

// BenchmarkFig1ReSC exercises the electronic ReSC baseline on the
// paper's Fig. 1(b) polynomial at x = 0.5 (expected value 0.5).
func BenchmarkFig1ReSC(b *testing.B) {
	poly := stochastic.PaperF1()
	unit, err := stochastic.NewReSCWithSeeds(poly, 1)
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, _ = unit.Evaluate(0.5, 1024)
	}
	b.ReportMetric(last, "f1(0.5)")
}

// BenchmarkFig5a regenerates the Fig. 5(a) channel totals.
func BenchmarkFig5a(b *testing.B) {
	var f dse.Fig5Case
	for i := 0; i < b.N; i++ {
		f = dse.Fig5A()
	}
	b.ReportMetric(f.Totals[2], "T(λ2)")
	b.ReportMetric(f.ReceivedMW, "rx_mW")
}

// BenchmarkFig5b regenerates the Fig. 5(b) data-'1' level.
func BenchmarkFig5b(b *testing.B) {
	var f dse.Fig5Case
	for i := 0; i < b.N; i++ {
		f = dse.Fig5B()
	}
	b.ReportMetric(f.Totals[0], "T(λ0)")
	b.ReportMetric(f.ReceivedMW, "rx_mW")
}

// BenchmarkFig5c enumerates all 24 (x, z) combinations and the
// de-randomizer bands.
func BenchmarkFig5c(b *testing.B) {
	var r dse.Fig5CResult
	for i := 0; i < b.N; i++ {
		r = dse.Fig5C()
	}
	b.ReportMetric(r.MaxZero, "max0_mW")
	b.ReportMetric(r.MinOne, "min1_mW")
}

// BenchmarkMRRFirst runs the §V.A design (pump 591.8 mW, ER
// 13.22 dB).
func BenchmarkMRRFirst(b *testing.B) {
	var p core.Params
	var err error
	for i := 0; i < b.N; i++ {
		p, err = core.MRRFirst(core.MRRFirstSpec{
			Order:       2,
			WLSpacingNM: 1.0,
			ModShape:    core.Fig5ModulatorShape(),
			FilterShape: core.Fig5FilterShape(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.PumpPowerMW, "pump_mW")
	b.ReportMetric(p.MZI.ERdB, "ER_dB")
}

// BenchmarkFig6a sweeps the IL × ER grid (MZI-first at 0.6 W pump).
func BenchmarkFig6a(b *testing.B) {
	var pts []dse.Fig6APoint
	for i := 0; i < b.N; i++ {
		pts = dse.Fig6A(4, 4)
	}
	// Report the worst corner (max probe power).
	worst := 0.0
	for _, p := range pts {
		if p.Feasible && p.ProbeMW > worst {
			worst = p.ProbeMW
		}
	}
	b.ReportMetric(worst, "max_probe_mW")
}

// BenchmarkFig6b sizes the anchor design for the three BER targets.
func BenchmarkFig6b(b *testing.B) {
	var pts []dse.Fig6BPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = dse.Fig6B([]float64{1e-2, 1e-4, 1e-6})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[2].ProbeMW, "probe@1e-6_mW")
	b.ReportMetric(pts[0].ProbeMW/pts[2].ProbeMW, "ratio_1e-2/1e-6")
}

// BenchmarkFig6c sizes the four published devices.
func BenchmarkFig6c(b *testing.B) {
	var pts []dse.Fig6CPoint
	for i := 0; i < b.N; i++ {
		pts = dse.Fig6C()
	}
	for _, p := range pts {
		if p.Err == nil {
			b.ReportMetric(p.ProbeMW, "probe_mW_"+p.Device.Name[:4])
		}
	}
}

// BenchmarkFig7a runs the n=2 energy sweep with its optimum.
func BenchmarkFig7a(b *testing.B) {
	var series []dse.Fig7ASeries
	var err error
	for i := 0; i < b.N; i++ {
		series, err = dse.Fig7A([]int{2}, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(series[0].Optimum.WLSpacingNM, "opt_nm")
	b.ReportMetric(series[0].Optimum.TotalPJ(), "opt_pJ")
}

// BenchmarkFig7b runs the order sweep at 1 nm vs optimal spacing.
func BenchmarkFig7b(b *testing.B) {
	var rows []dse.Fig7BRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = dse.Fig7B([]int{2, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Fixed1nm.TotalPJ(), "n2@1nm_pJ")
	b.ReportMetric(rows[1].Fixed1nm.TotalPJ(), "n8@1nm_pJ")
	b.ReportMetric(rows[0].SavingPct, "saving_pct")
}

// BenchmarkEnergyPerBit evaluates the headline §V.C energy at the
// optimal spacing (paper: 20.1 pJ/bit).
func BenchmarkEnergyPerBit(b *testing.B) {
	m := core.NewEnergyModel(2)
	var opt core.EnergyBreakdown
	var err error
	for i := 0; i < b.N; i++ {
		opt, err = m.OptimalSpacing(0.1, 0.3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(opt.TotalPJ(), "pJ_per_bit")
}

// BenchmarkOpticalUnitStep measures the per-bit cost of the cached
// end-to-end optical unit.
func BenchmarkOpticalUnitStep(b *testing.B) {
	c := core.MustCircuit(core.PaperParams())
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	ones := 0
	for i := 0; i < b.N; i++ {
		ones += u.Step(0.5, 0).Bit
	}
	_ = ones
}

// BenchmarkGammaCorrection runs the §V.C application on the optical
// unit (64×64 image, degree 6).
func BenchmarkGammaCorrection(b *testing.B) {
	src := img.Radial(64, 64)
	exact := img.GammaExact(src, 0.45)
	var psnr float64
	for i := 0; i < b.N; i++ {
		out, err := img.GammaOptical(src, 0.45, 6, 0.3, 1024, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		psnr = img.PSNR(exact, out)
	}
	b.ReportMetric(psnr, "PSNR_dB")
}

// BenchmarkGammaReSC contrasts the bit-serial ReSC gamma LUT build
// against the word-parallel multi-core batch engine behind
// img.GammaReSC — the tentpole speedup (≥5× expected: ~5× from
// 64-bit packing alone, times the core count).
func BenchmarkGammaReSC(b *testing.B) {
	src := img.Radial(64, 64)
	const gamma, degree, streamLen, seed = 0.45, 6, 1024, 11
	poly, _, err := stochastic.GammaCorrection(gamma, degree)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for v := 0; v < 256; v++ {
				unit, err := stochastic.NewReSCWithSeeds(poly, stochastic.DeriveSeed(seed, v))
				if err != nil {
					b.Fatal(err)
				}
				unit.Evaluate(float64(v)/255, streamLen)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		var out *img.Gray
		for i := 0; i < b.N; i++ {
			var err error
			out, err = img.GammaReSC(src, gamma, degree, streamLen, seed)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(img.PSNR(img.GammaExact(src, gamma), out), "PSNR_dB")
	})
}

// BenchmarkRobertsCross contrasts the bit-serial Robert's-cross
// oracle with the packed tiled engine at the paper-scale stream
// length — the tentpole speedup (≥4× single-core, times the core
// count from the tile pool). The two paths emit bit-identical images.
// The checkerboard is the canonical edge test card, where the
// engine's flat-window elision also kicks in (~17× single-core); the
// dense radial image defeats the elision and isolates the fused
// word-kernel gain alone.
func BenchmarkRobertsCross(b *testing.B) {
	const streamLen, seed = 4096, 7
	run := func(name string, singleCore bool, src *img.Gray, f func(*img.Gray) (*img.Gray, error)) {
		b.Run(name, func(b *testing.B) {
			if singleCore {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
			}
			exact := img.RobertsCrossExact(src)
			var out *img.Gray
			var err error
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err = f(src)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(img.PSNR(exact, out), "PSNR_dB")
		})
	}
	serial := func(src *img.Gray) (*img.Gray, error) {
		return img.RobertsCrossSCSerial(src, streamLen, seed)
	}
	packed := func(src *img.Gray) (*img.Gray, error) {
		return img.RobertsCrossSC(src, streamLen, seed)
	}
	board := img.Checkerboard(64, 64, 8, 30, 220)
	dense := img.Radial(64, 64)
	run("serial", false, board, serial)
	run("packed-1core", true, board, packed)
	run("packed", false, board, packed)
	run("dense-serial", false, dense, serial)
	run("dense-packed-1core", true, dense, packed)
}

// BenchmarkGammaOptical is the optical-unit counterpart: per-level
// bit-serial evaluation vs the unit's word-parallel EvaluateBatch.
func BenchmarkGammaOptical(b *testing.B) {
	src := img.Radial(64, 64)
	const gamma, streamLen = 0.45, 1024
	poly, _, err := stochastic.GammaCorrection(gamma, 6)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.MRRFirst(core.MRRFirstSpec{Order: 6, WLSpacingNM: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	c := core.MustCircuit(p)
	u, err := core.NewUnit(c, poly, 12)
	if err != nil {
		b.Fatal(err)
	}
	levels := make([]float64, 256)
	for v := range levels {
		levels[v] = float64(v) / 255
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range levels {
				u.Evaluate(x, streamLen)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u.EvaluateBatch(levels, streamLen)
		}
	})
	// End-to-end check of the batched image path at the same settings.
	out, err := img.GammaOptical(src, gamma, 6, 0.3, streamLen, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(img.PSNR(img.GammaExact(src, gamma), out), "PSNR_dB")
}

// BenchmarkTransient measures the noisy time-domain simulator and
// reports measured-vs-analytic worst-case BER agreement.
func BenchmarkTransient(b *testing.B) {
	p := core.PaperParams()
	p.ProbePowerMW = core.MustCircuit(p).MinProbePowerMW(1e-3)
	c := core.MustCircuit(p)
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 5)
	if err != nil {
		b.Fatal(err)
	}
	sim := transient.NewSimulator(u, 6)
	var measured float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if measured, err = sim.MeasureWorstCaseBER(100_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(measured, "BER_measured")
	b.ReportMetric(sim.AnalyticWorstCaseBER(), "BER_analytic")
}

// --- Ablations (DESIGN.md §7) ---

// BenchmarkAblationWorstCaseSNR compares Eq. (8)'s one-hot crosstalk
// margin against the exhaustive worst-case-over-z margin.
func BenchmarkAblationWorstCaseSNR(b *testing.B) {
	c := core.MustCircuit(core.PaperParams())
	var eq8, full float64
	for i := 0; i < b.N; i++ {
		eq8, _ = c.WorstCaseDelta()
		full = c.WorstCaseDeltaOverZ()
	}
	b.ReportMetric(eq8, "eq8_margin")
	b.ReportMetric(full, "exhaustive_margin")
}

// BenchmarkAblationPulseVsCW quantifies the 26 ps pulse-based pump's
// energy advantage (§V.C).
func BenchmarkAblationPulseVsCW(b *testing.B) {
	p, err := core.MRRFirst(core.MRRFirstSpec{Order: 2, WLSpacingNM: 0.165})
	if err != nil {
		b.Fatal(err)
	}
	var pulsed, cw core.EnergyBreakdown
	for i := 0; i < b.N; i++ {
		pulsed = core.ParamsEnergy(p)
		q := p
		q.PulseWidthS = 0
		cw = core.ParamsEnergy(q)
	}
	b.ReportMetric(pulsed.TotalPJ(), "pulsed_pJ")
	b.ReportMetric(cw.TotalPJ(), "cw_pJ")
}

// BenchmarkAblationSNG compares randomizer implementations (LFSR vs
// chaotic vs SplitMix64) by ReSC accuracy at equal stream length —
// the paper's future-work item iii considers chaotic lasers as
// optical randomizers.
func BenchmarkAblationSNG(b *testing.B) {
	poly := stochastic.PaperF1()
	build := func(mk func(i int) stochastic.NumberSource) *stochastic.ReSC {
		data := make([]stochastic.NumberSource, 3)
		for i := range data {
			data[i] = mk(i)
		}
		coef := make([]stochastic.NumberSource, 4)
		for i := range coef {
			coef[i] = mk(10 + i)
		}
		r, err := stochastic.NewReSC(poly, data, coef)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	sources := map[string]func(i int) stochastic.NumberSource{
		"lfsr": func(i int) stochastic.NumberSource {
			return stochastic.MustLFSR(16, uint64(0xACE1+i*7919))
		},
		"chaotic": func(i int) stochastic.NumberSource {
			return stochastic.NewChaoticSource(0.1 + 0.05*float64(i))
		},
		"splitmix": func(i int) stochastic.NumberSource {
			return stochastic.NewSplitMix64(uint64(1 + i))
		},
	}
	want := poly.Eval(0.5)
	for name, mk := range sources {
		var errAbs float64
		for i := 0; i < b.N; i++ {
			r := build(mk)
			got, _ := r.Evaluate(0.5, 4096)
			errAbs = math.Abs(got - want)
		}
		b.ReportMetric(errAbs, "abs_err_"+name)
	}
}

// BenchmarkAblationAPD compares the calibrated pin detector against
// the future-work APD [21] at the same BER target.
func BenchmarkAblationAPD(b *testing.B) {
	var rows []dse.APDComparisonRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = dse.APDComparison(1e-6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ProbeMW, "pin_probe_mW")
	b.ReportMetric(rows[1].ProbeMW, "apd_probe_mW")
}

// BenchmarkAblationRingLinewidth reports how the Fig. 7 optimum moves
// with the (unpublished) filter linewidth.
func BenchmarkAblationRingLinewidth(b *testing.B) {
	var rows []dse.RingSensitivityRow
	for i := 0; i < b.N; i++ {
		rows = dse.RingSensitivity([]float64{0.75, 1.0, 1.5})
	}
	for _, r := range rows {
		if r.Feasible {
			b.ReportMetric(r.OptSpacingNM, fmt.Sprintf("opt_nm@%.2fx", r.FWHMScale))
		}
	}
}

// BenchmarkSyncSweep contrasts the bit-serial pulse-synchronization
// oracle (§V.D) with the word-parallel sweep: block Gaussian fills per
// offset, offsets fanned over the pool with derived seeds. The two
// paths return identical points.
func BenchmarkSyncSweep(b *testing.B) {
	p := core.PaperParams()
	c := core.MustCircuit(p)
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 5)
	if err != nil {
		b.Fatal(err)
	}
	sim := transient.NewSimulator(u, 6)
	const points, bits = 16, 10_000
	run := func(name string, singleCore bool, sweep func(points, bits int) []transient.SyncPoint) {
		b.Run(name, func(b *testing.B) {
			if singleCore {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
			}
			var pts []transient.SyncPoint
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pts = sweep(points, bits)
			}
			b.ReportMetric(transient.WorstInPulseBER(pts), "BER_gated")
			b.ReportMetric(transient.WorstOutOfPulseBER(pts), "BER_ungated")
		})
	}
	run("serial", false, sim.SyncSweepSerial)
	run("words-1core", true, sim.SyncSweep)
	run("words", false, sim.SyncSweep)
}

// BenchmarkMeasureEye contrasts the Step-per-slot eye oracle with the
// word-parallel measurement (core.Unit.Cycles + block noise); the two
// accumulate identical statistics.
func BenchmarkMeasureEye(b *testing.B) {
	c := core.MustCircuit(core.PaperParams())
	u, err := core.NewUnit(c, stochastic.NewBernstein([]float64{0.25, 0.625, 0.75}), 5)
	if err != nil {
		b.Fatal(err)
	}
	sim := transient.NewSimulator(u, 6)
	const bits = 20_000
	b.Run("serial", func(b *testing.B) {
		var e transient.EyeStats
		for i := 0; i < b.N; i++ {
			e = sim.MeasureEyeSerial(0.5, bits)
		}
		b.ReportMetric(e.OpeningMW, "opening_mW")
	})
	b.Run("words", func(b *testing.B) {
		var e transient.EyeStats
		for i := 0; i < b.N; i++ {
			e = sim.MeasureEye(0.5, bits)
		}
		b.ReportMetric(e.OpeningMW, "opening_mW")
	})
}

// BenchmarkFig6aSweep measures the multi-core Fig. 6(a) grid (one full
// MZI-first solve per cell) at the oscbench default resolution —
// near-linear scaling across the 1-core and all-core variants is the
// sweep engine's contract.
func BenchmarkFig6aSweep(b *testing.B) {
	run := func(name string, singleCore bool) {
		b.Run(name, func(b *testing.B) {
			if singleCore {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
			}
			var pts []dse.Fig6APoint
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pts = dse.Fig6A(6, 6)
			}
			b.StopTimer()
			worst := 0.0
			for _, p := range pts {
				if p.Feasible && p.ProbeMW > worst {
					worst = p.ProbeMW
				}
			}
			b.ReportMetric(worst, "max_probe_mW")
		})
	}
	run("1core", true)
	run("allcores", false)
}

// BenchmarkFig7aSweep measures the parallel Fig. 7(a) energy sweep
// (orders × spacings, one MRR-first solve per point).
func BenchmarkFig7aSweep(b *testing.B) {
	run := func(name string, singleCore bool) {
		b.Run(name, func(b *testing.B) {
			if singleCore {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
			}
			var series []dse.Fig7ASeries
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				series, err = dse.Fig7A([]int{2, 4, 6}, 11)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(series[0].Optimum.TotalPJ(), "n2_opt_pJ")
		})
	}
	run("1core", true)
	run("allcores", false)
}

// BenchmarkRingSensitivitySweep measures the parallel ablation sweep
// (one energy-optimum search per linewidth scale).
func BenchmarkRingSensitivitySweep(b *testing.B) {
	scales := []float64{0.75, 1.0, 1.25, 1.5}
	run := func(name string, singleCore bool) {
		b.Run(name, func(b *testing.B) {
			if singleCore {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
			}
			var rows []dse.RingSensitivityRow
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows = dse.RingSensitivity(scales)
			}
			b.StopTimer()
			b.ReportMetric(rows[1].OptSpacingNM, "opt_nm@1x")
		})
	}
	run("1core", true)
	run("allcores", false)
}

// BenchmarkYieldDie measures one fabricated die's analysis — circuit
// build, Eq. (8) margin, BER and eye scan — the cached-circuit
// consumer the PowerTable/factor caches speed up (the die runs its
// band scan off one shared factor tabulation instead of re-evaluating
// ring Lorentzians per (weight, z) state).
func BenchmarkYieldDie(b *testing.B) {
	p := core.PaperParams()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var r core.YieldResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = core.AnalyzeYield(p, core.VariationSpec{
			RingResonanceSigmaNM: 0.05,
			Samples:              1,
			Seed:                 7,
			TargetBER:            1e-6,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MeanBER, "die_BER")
}

// BenchmarkCalibrationLoop measures the future-work (i) control loop:
// steady-state misalignment under ±5 K drift.
func BenchmarkCalibrationLoop(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		env, err := control.NewThermalEnvironment(5, 1e-3, 0.02, uint64(42+i))
		if err != nil {
			b.Fatal(err)
		}
		heater, err := control.NewHeater(0.25, 4)
		if err != nil {
			b.Fatal(err)
		}
		target := 1550.1
		ring := control.NewDriftedRing(target-0.5, env, heater)
		mon, err := control.NewMonitor(0.05, 1e-5, uint64(43+i))
		if err != nil {
			b.Fatal(err)
		}
		loop, err := control.NewLoop(ring, core.DenseFilterShape().At(ring.ColdResonanceNM), target, 1.0, mon)
		if err != nil {
			b.Fatal(err)
		}
		samples := loop.Run(2000)
		worst = 0
		for _, s := range samples[1000:] {
			if a := math.Abs(s.MisalignNM); a > worst {
				worst = a
			}
		}
	}
	b.ReportMetric(worst, "locked_nm")
}

// BenchmarkParallelArray measures the multi-lane batch evaluator.
func BenchmarkParallelArray(b *testing.B) {
	c := core.MustCircuit(core.PaperParams())
	poly := stochastic.NewBernstein([]float64{0.25, 0.625, 0.75})
	arr, err := core.NewParallelArray(c, poly, 4, 11)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]float64, 32)
	for i := range xs {
		xs[i] = float64(i) / 31
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr.EvaluateBatch(xs, 1024)
	}
	b.ReportMetric(arr.PowerDensityMWPerMM2(), "mW_per_mm2")
}

// BenchmarkYield runs the Monte-Carlo process-variation analysis.
func BenchmarkYield(b *testing.B) {
	p := core.PaperParams()
	var r core.YieldResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = core.AnalyzeYield(p, core.VariationSpec{
			RingResonanceSigmaNM: 0.05,
			Samples:              100,
			Seed:                 7,
			TargetBER:            1e-6,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Yield, "yield")
}

// BenchmarkNetlistElaborate measures deck parsing plus elaboration.
func BenchmarkNetlistElaborate(b *testing.B) {
	deck := "order 2\npoly 0.25 0.625 0.75\nprobe 1.0\n"
	for i := 0; i < b.N; i++ {
		d, err := netlist.Parse(strings.NewReader(deck))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := netlist.Elaborate(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhotonicVsBehavioral compares the complex-field ring
// against the closed-form Eq. (2) evaluation cost.
func BenchmarkPhotonicVsBehavioral(b *testing.B) {
	ring, err := photonic.NewRing(0.96, 0.97, 0.999)
	if err != nil {
		b.Fatal(err)
	}
	ref := core.DenseFilterShape().At(1550)
	var s float64
	b.Run("field", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s += ring.ThroughIntensity(0.01)
		}
	})
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s += ref.Through(1550.02, 1550)
		}
	})
	_ = s
}

// BenchmarkAblationSpacing compares the fixed 1 nm comb of §V.A
// against the Fig. 7 optimum.
func BenchmarkAblationSpacing(b *testing.B) {
	m := core.NewEnergyModel(2)
	var fixed, opt core.EnergyBreakdown
	var err error
	for i := 0; i < b.N; i++ {
		fixed, err = m.Breakdown(1.0)
		if err != nil {
			b.Fatal(err)
		}
		opt, err = m.OptimalSpacing(0.1, 0.3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fixed.TotalPJ(), "fixed1nm_pJ")
	b.ReportMetric(opt.TotalPJ(), "optimal_pJ")
}
