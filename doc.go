// Package repro is a from-scratch Go reproduction of H. El-Derhalli,
// S. Le Beux and S. Tahar, "Stochastic Computing with Integrated
// Optics", DATE 2019.
//
// The implementation lives in internal/ packages:
//
//   - internal/numeric — numerical substrate (special functions,
//     minimization, linear algebra, Bernstein bases);
//   - internal/optics — silicon-photonic device models (MZI, micro-
//     ring resonators, TPA tuning, lasers, photodetector);
//   - internal/stochastic — stochastic-computing substrate and the
//     electronic ReSC baseline of the paper's Fig. 1;
//   - internal/core — the optical SC architecture: transmission model
//     (Eqs. 5–7), SNR/BER (Eqs. 8–9), MRR-first and MZI-first design
//     methods, the pulsed-pump energy model and a reconfigurable
//     multi-order variant;
//   - internal/transient — time-domain simulation with detector
//     noise (the paper's future-work item ii);
//   - internal/dse — regeneration of every evaluation figure;
//   - internal/image — the gamma-correction application workload.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// the per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate one figure or
// in-text claim each.
package repro
