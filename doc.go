// Package repro is a from-scratch Go reproduction of H. El-Derhalli,
// S. Le Beux and S. Tahar, "Stochastic Computing with Integrated
// Optics", DATE 2019. The module path is "repro"; it builds with the
// standard toolchain and no external dependencies.
//
// Quickstart:
//
//	go test ./...                  # full verification suite
//	go run ./examples/quickstart   # build the paper circuit, evaluate
//	go test -bench=. -benchmem     # regenerate the paper's figures
//
// # Evaluation engines
//
// Every stochastic evaluator comes in two equivalent forms. The
// bit-serial path (ReSC.Step/Evaluate, core.Unit.Step/Evaluate)
// advances one clock per call and serves as the oracle. The
// word-parallel path simulates 64 clocks per machine word — SNG words
// (stochastic.SNG.NextWord/GenerateWords), a bitwise carry-save adder
// tree for the data-bit sum (stochastic.AddPlane/PlaneEquals), and a
// word-at-a-time multiplexer / decision-table lookup — and emits
// bit-identical streams (ReSC.EvaluateWords, core.Unit.EvaluateWords).
// On top of that, stochastic.EvaluateBatch and core.Unit.EvaluateBatch
// fan independent inputs out over a runtime.GOMAXPROCS-sized worker pool with
// per-input seeds derived by stochastic.DeriveSeed, so batch results
// are reproducible on any core count. The gamma-correction LUTs,
// sweeps and oscbench all run through the batch engine.
//
// Every measurement and sweep on top of those primitives dispatches
// through a pluggable engine layer (internal/engine). An Engine says
// how independent work items run — engine.Serial in index order on
// the calling goroutine, engine.WordParallel over the
// internal/parallel pool — and every sweep-shaped entry point has an
// explicit-engine form (AccuracyVsLengthOn, RobertsCrossSCOn,
// SweepOn, OptimalSpacingOn, ...): the bare name X runs on the
// process-default engine (engine.Default, word-parallel; swap it with
// engine.SetDefault or `oscbench -engine serial`), and each retained
// XSerial oracle is a one-line shim on engine.Serial rather than a
// parallel code copy. Cross-engine bit-equivalence and
// GOMAXPROCS-independence are pinned by one generic suite,
// internal/engine/enginetest: each package registers its engine entry
// points as enginetest cases, replayed on every registered engine at
// GOMAXPROCS 1 and 4 against the engine.Serial reference.
//
// The noise-aware transient path is word-parallel too: the received
// power is a pure function of (weight, z-mask), so
// core.Unit.EvaluateNoisy resolves 64 noisy threshold decisions per
// word from a power table plus block Gaussian noise
// (transient.Gaussian.Fill, Box–Muller over any
// stochastic.NumberSource). transient.Simulator.EvaluateWords emits
// streams bit-identical to the serial Step loop;
// transient.Simulator.EvaluateBatch and the dse.NoiseStudy
// Monte-Carlo harness (oscbench -fig noise) fan per-trial seeds over
// the same worker pool. The transient measurements follow suit, each an
// engine-dispatched entry point (TraceOn, MeasureEyeOn, SyncSweepOn,
// BERWaterfallOn, AccuracyVsLengthOn): Trace and MeasureEye decode 64
// cycles per word (core.Unit.Cycles) with block noise, and
// SyncSweep, BERWaterfall (oscbench -fig waterfall) and
// AccuracyVsLength fan their points and trials over the selected
// engine with derived seeds — bit-identical across engines at any
// GOMAXPROCS. Quickstart:
//
//	sim := transient.NewSimulator(u, 2)
//	val, _, err := sim.EvaluateWords(0.5, 4096)        // one noisy stream
//	vals, err := sim.EvaluateBatch(trialInputs, 4096)  // Monte-Carlo fan-out
//	ber, err := sim.MeasureWorstCaseBER(200_000)       // batched Eq. (8) patterns
//
// Image workloads run word-parallel end to end. Gamma correction
// builds its 256-level LUT through the batch engines — and because
// the LUT is a pure function of its recipe, image.GammaLUTCache
// memoizes it across frames and image.GammaVideo corrects whole frame
// batches through one cached table (oscbench -fig video), frames
// fanned over the pool; Robert's-cross
// edge detection — per-pixel correlated streams, no LUT shortcut —
// runs on a tiled multi-core engine (image.RobertsCrossSC) built from
// word-level plane kernels: stochastic.FillCorrelatedPlanes draws one
// shared uniform per clock against two thresholds so XOR computes
// |a−b| exactly, stochastic.FillAbsDiffPlane fuses that pair with its
// XOR, and Xor/Not/Mux plane combinators run on per-worker scratch
// with zero per-pixel allocations. Per-pixel stochastic.DeriveSeed
// seeding keeps the tiled output bit-identical to the bit-serial
// oracle on any GOMAXPROCS; flat image regions elide their RNG draws
// entirely. core.AnalyzeYield fans Monte-Carlo dies over the same
// pool with per-die derived seeds, reproducible on any core count.
// Quickstart:
//
//	sc, err := image.RobertsCrossSC(src, 4096, seed)  // packed tiled engine
//	oracle, err := image.RobertsCrossSCSerial(src, 4096, seed)  // identical bits
//	rows, err := dse.EdgeStudy([]int{64, 256, 1024, 4096}, 7)   // oscbench -fig edge
//
// The figure/design-space layer runs on a deterministic parallel
// sweep engine (internal/dse): every study is an index-ordered list of
// independent points fanned over the worker pool, with any randomness
// derived from the point index (stochastic.DeriveSeed) — so `oscbench
// -fig all` and the dse APIs scale with cores yet return identical
// tables at any GOMAXPROCS (cap the pool with `oscbench -workers N`,
// print per-figure wall time with `-timing`). Underneath, core.Circuit
// caches its analysis once per instance — per-device transmission
// factors, the (weight, z-mask) received-power table (PowerTable), the
// power bands and the Eq. (8) margin — so design solves, yield dies
// and the packed engines stop re-evaluating ring Lorentzians per
// state. Even the golden-section spacing search
// (core.EnergyModel.OptimalSpacing) fans its bracketing grid scan —
// the ~60 independent design solves that dominate it — over the
// engine in contiguous chunks (engine.Chunked), so dispatch overhead
// no longer eats the fan-out win, bit-identical to its serial shim. CI tracks the speed itself: the
// bench-delta job records the tentpole benchmarks as BENCH_PR5.json
// and gates them against the committed BENCH_BASELINE.json (refresh
// with `make bench-baseline`, see cmd/benchdelta). Quickstart:
//
//	pts := dse.Fig6A(12, 12)                          // parallel grid of MZIFirst solves
//	rows := dse.Sweep(len(xs), func(i int) R { ... }) // custom sweep, index-ordered
//	rows, err := dse.SweepSeededErr(n, seed, point)   // Monte-Carlo, per-point seeds
//	pow := circuit.PowerTable()                       // shared (weight, zmask) -> mW
//
// The long-running sweeps are robust to interruption and faults. The
// engine layer dispatches under a context (engine.CtxEngine,
// engine.RunCtx): SIGINT, a deadline (`oscbench -timeout`), or a
// worker panic stops the fan-out at an item boundary and surfaces a
// typed *engine.Partial — which items completed, and why it stopped —
// instead of crashing; the cancellable entry points (AnalyzeYieldCtx,
// BERWaterfallCtx, AccuracyVsLengthCtx, GammaVideoCtx, dse.SweepCtx/
// GridCtx) thread it through every layer. On top of that,
// dse.Checkpointer snapshots completed sweep points to disk (atomic
// writes, fail-closed content-hash keys) so an interrupted run
// resumes by re-running only the missing indices — bit-identical to
// an uninterrupted run, because every point depends on (key, index)
// alone. `oscbench -fig yield -checkpoint y.json`, ^C, then `-resume`
// demonstrates the round trip; CI replays it as a smoke test. The
// failure paths themselves are tested by deterministic fault
// injection: engine.Chaos wraps any engine to drop-then-retry, delay,
// or panic on chosen items, and the enginetest.RunChaos suite asserts
// every entry point either recovers bit-identically or fails with a
// typed error naming the faulting index.
//
// # Sharding and merge
//
// The same determinism contract — every point a pure function of
// (key, index) — makes sweeps distributable with no coordination.
// engine.Shard wraps any engine to run only the indices a shard owns
// (round-robin i%N==K, or contiguous blocks), bit-identical on the
// owned subset; a shard that finishes its slice reports the rest
// through the usual *engine.Partial (Done bitmap = ownership,
// engine.ErrShardRemainder as the cause), so callers distinguish "my
// share is done" from a genuine interruption. `oscbench -fig yield
// -shard k/n -checkpoint y.json` runs one leg on one machine, writing
// its snapshot to the shard-tagged y.shardKofN.json (the key hash
// excludes the shard, so all legs address the same study); cmd/oscmerge
// assembles the legs by point index, failing closed on key mismatches,
// gaps, or disagreeing overlaps, and its output is byte-identical to an
// uninterrupted unsharded checkpoint — render it with `-checkpoint
// y.json -resume`, which re-runs zero dies. The HTTP service accepts
// the same split ({"shard":k,"of":n} on /v1/yield). CI's shard-merge
// job replays the whole recipe and diffs against the unsharded run.
//
// All of it is servable over HTTP: cmd/oscserve (internal/serve)
// exposes the figure registry (shared with oscbench via
// internal/figures), the BER waterfall, the checkpointable yield
// study and the gamma/edge image operators as a JSON API — POST
// /v1/figures/{key}, /v1/ber, /v1/yield, /v1/image/{gamma,edge}, GET
// /v1/figures, /healthz, /readyz. The service composes the layers
// above into crash-safety guarantees: a bounded job queue answers 503
// with Retry-After instead of spawning unbounded goroutines, every
// job dispatches on one shared engine.Limited (a slot-semaphore
// engine, registered and enginetest-verified) so concurrent requests
// never oversubscribe the machine, per-request deadlines thread into
// the *Ctx entry points and surface engine.Partial progress in typed
// 504 bodies, a panicking work item becomes a typed 500 naming the
// faulting index while the server keeps serving, and SIGTERM drains
// gracefully — in-flight sweeps checkpoint at an item boundary, and a
// restarted server resumes a re-POSTed /v1/yield byte-identical to an
// uninterrupted run. Responses are cached under the same fail-closed
// (figure, config, seed, N) content address the checkpoints use,
// which the determinism contract makes safe: equal keys are equal
// bytes on any engine at any worker count. See internal/serve's
// package comment for the full API, error-kind and retry reference.
//
// The implementation lives in internal/ packages:
//
//   - internal/numeric — numerical substrate (special functions,
//     minimization, linear algebra, Bernstein bases);
//   - internal/optics — silicon-photonic device models (MZI, micro-
//     ring resonators, TPA tuning, lasers, photodetector);
//   - internal/stochastic — stochastic-computing substrate, the
//     electronic ReSC baseline of the paper's Fig. 1, and the packed
//     word-parallel evaluation engine;
//   - internal/parallel — the worker-pool primitive behind the batch
//     evaluators;
//   - internal/engine — the pluggable evaluation-engine layer
//     (Serial, WordParallel, Chaos, Limited, Shard, registry, chunked
//     dispatch) and its enginetest cross-engine equivalence suite;
//   - internal/figures — the figure registry shared by oscbench and
//     oscserve;
//   - internal/serve — the HTTP simulation service behind
//     cmd/oscserve;
//   - internal/core — the optical SC architecture: transmission model
//     (Eqs. 5–7), SNR/BER (Eqs. 8–9), MRR-first and MZI-first design
//     methods, the pulsed-pump energy model and a reconfigurable
//     multi-order variant;
//   - internal/transient — time-domain simulation with detector
//     noise (the paper's future-work item ii);
//   - internal/dse — regeneration of every evaluation figure;
//   - internal/image — the gamma-correction application workload;
//   - internal/lint — the repo-convention static analyzers behind
//     cmd/osclint and CI's osclint job.
//
// The reproduction disciplines above — derived seeds instead of wall
// clocks, sorted map iteration before rendering, pinned X/XSerial
// oracle pairs, engine entry points registered in the cross-engine
// enginetest suite, propagated errors, allocation-free worker bodies —
// are machine-enforced: `make lint` (cmd/osclint, stdlib-only go/ast +
// go/types) fails CI on any unsuppressed violation, and intentional
// exceptions carry //osclint:ignore annotations with reasons.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// the per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate one figure or
// in-text claim each.
package repro
