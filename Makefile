# Convenience targets; everything here is plain `go` underneath.

# Pipelines must fail when `go test` fails, not just when the final
# benchdelta stage does.
SHELL       := /bin/bash
.SHELLFLAGS := -o pipefail -c

# The benchmarks tracked by CI's bench-delta job (cmd/benchdelta):
# the engine-dispatched paths (one per package), serial engines
# included so the dispatch overhead stays visible.
BENCH_PATTERN := Trace|BERWaterfall|AccuracyVsLength|OptimalSpacing|GammaVideo|SweepEngine|ServeFig
BENCH_PKGS    := ./internal/transient ./internal/core ./internal/image ./internal/dse ./internal/serve
# 10 iterations per count: at 3x, run-to-run scheduler jitter on a
# small runner exceeds the 30% gate and the delta measures noise.
BENCH_FLAGS   := -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=10x -count=3

.PHONY: test lint lint-list bench-delta bench-baseline

test:
	go build ./... && go test ./...

# The repo-convention static analyzers (cmd/osclint): determinism,
# oracle pairs, error propagation, map-iteration order, hot-loop
# allocation. Fails on any unsuppressed finding — what CI's osclint
# job runs.
lint:
	go run ./cmd/osclint ./...

# Everything the analyzers see, suppressed findings included (with
# their //osclint:ignore reasons), without failing the make.
lint-list:
	go run ./cmd/osclint -all -exitzero ./...

# Record this machine's numbers and gate them against the committed
# baseline — what CI's bench-delta job runs.
bench-delta:
	go test $(BENCH_FLAGS) $(BENCH_PKGS) \
	  | go run ./cmd/benchdelta -out BENCH_PR5.json -baseline BENCH_BASELINE.json -threshold 0.30

# Refresh the committed baseline (run on the reference machine — CI's
# runner class — and commit the result).
bench-baseline:
	go test $(BENCH_FLAGS) $(BENCH_PKGS) \
	  | go run ./cmd/benchdelta -update -baseline BENCH_BASELINE.json
